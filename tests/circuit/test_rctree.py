"""Unit tests for the RC-tree data structure."""

import numpy as np
import pytest

from repro import RCTree
from repro._exceptions import TopologyError, ValidationError


class TestConstruction:
    def test_empty_tree_has_no_nodes(self):
        tree = RCTree("in")
        assert tree.num_nodes == 0
        assert tree.input_node == "in"
        assert len(tree) == 0

    def test_add_node_chain(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.add_node("b", "a", 20.0, 2e-12)
        assert tree.num_nodes == 2
        assert tree.node_names == ("a", "b")
        assert tree.parent_of("b") == "a"
        assert tree.parent_of("a") == "in"

    def test_duplicate_node_rejected(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0)
        with pytest.raises(TopologyError):
            tree.add_node("a", "in", 20.0)

    def test_node_named_like_input_rejected(self):
        tree = RCTree("in")
        with pytest.raises(TopologyError):
            tree.add_node("in", "in", 10.0)

    def test_unknown_parent_rejected(self):
        tree = RCTree("in")
        with pytest.raises(TopologyError):
            tree.add_node("a", "ghost", 10.0)

    def test_nonpositive_resistance_rejected(self):
        tree = RCTree("in")
        with pytest.raises(ValidationError):
            tree.add_node("a", "in", 0.0)
        with pytest.raises(ValidationError):
            tree.add_node("a", "in", -5.0)

    def test_negative_capacitance_rejected(self):
        tree = RCTree("in")
        with pytest.raises(ValidationError):
            tree.add_node("a", "in", 10.0, -1e-15)

    def test_nonfinite_values_rejected(self):
        tree = RCTree("in")
        with pytest.raises(ValidationError):
            tree.add_node("a", "in", float("inf"))
        with pytest.raises(ValidationError):
            tree.add_node("a", "in", 10.0, float("nan"))

    def test_empty_names_rejected(self):
        with pytest.raises(ValidationError):
            RCTree("")
        tree = RCTree("in")
        with pytest.raises(ValidationError):
            tree.add_node("", "in", 10.0)

    def test_contains(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0)
        assert "a" in tree
        assert "in" in tree
        assert "b" not in tree


class TestMutators:
    def test_set_capacitance(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.set_capacitance("a", 3e-12)
        assert tree.node("a").capacitance == 3e-12

    def test_add_load_accumulates(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.add_load("a", 2e-12)
        tree.add_load("a", 0.5e-12)
        assert tree.node("a").capacitance == pytest.approx(3.5e-12)

    def test_set_resistance(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.set_resistance("a", 99.0)
        assert tree.node("a").resistance == 99.0

    def test_mutation_invalidates_caches(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.add_node("b", "a", 10.0, 1e-12)
        first = tree.path_resistance("b")
        tree.set_resistance("a", 100.0)
        assert tree.path_resistance("b") == pytest.approx(110.0)
        assert first == pytest.approx(20.0)

    def test_invalid_mutations_rejected(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        with pytest.raises(ValidationError):
            tree.set_capacitance("a", -1.0)
        with pytest.raises(ValidationError):
            tree.set_resistance("a", 0.0)
        with pytest.raises(ValidationError):
            tree.add_load("a", -1e-15)


class TestTopologyQueries:
    def test_children_and_leaves(self, branched_tree):
        assert set(branched_tree.children_of("trunk")) == {"a1", "b1"}
        assert branched_tree.children_of("in") == ("trunk",)
        assert set(branched_tree.leaves()) == {"a2", "b1"}

    def test_depths(self, branched_tree):
        assert branched_tree.depth_of("in") == 0
        assert branched_tree.depth_of("trunk") == 1
        assert branched_tree.depth_of("a2") == 3

    def test_path_to_root(self, branched_tree):
        assert branched_tree.path_to_root("a2") == ["a2", "a1", "trunk"]

    def test_subtree_nodes(self, branched_tree):
        assert set(branched_tree.subtree_nodes("a1")) == {"a1", "a2"}
        assert set(branched_tree.subtree_nodes("trunk")) == {
            "trunk", "a1", "a2", "b1"
        }

    def test_preorder_parents_first(self, branched_tree):
        seen = set()
        for name in branched_tree.iter_preorder():
            parent = branched_tree.parent_of(name)
            assert parent == "in" or parent in seen
            seen.add(name)
        assert seen == set(branched_tree.node_names)

    def test_index_round_trip(self, branched_tree):
        for name in branched_tree.node_names:
            assert branched_tree.name_of(branched_tree.index_of(name)) == name

    def test_input_node_has_no_index(self, branched_tree):
        with pytest.raises(TopologyError):
            branched_tree.index_of("in")

    def test_unknown_node_raises(self, branched_tree):
        with pytest.raises(TopologyError):
            branched_tree.index_of("nope")


class TestPathResistance:
    def test_path_resistance_chain(self, simple_line):
        assert simple_line.path_resistance("n3") == pytest.approx(300.0)
        assert simple_line.path_resistance("in") == 0.0

    def test_shared_path_resistance_same_branch(self, branched_tree):
        # a2 vs a1: common path is in->trunk->a1.
        assert branched_tree.shared_path_resistance("a2", "a1") == \
            pytest.approx(350.0)

    def test_shared_path_resistance_cross_branch(self, branched_tree):
        # a2 vs b1 share only the trunk edge.
        assert branched_tree.shared_path_resistance("a2", "b1") == \
            pytest.approx(200.0)

    def test_shared_path_resistance_symmetric(self, branched_tree):
        names = branched_tree.node_names
        for a in names:
            for b in names:
                assert branched_tree.shared_path_resistance(a, b) == \
                    pytest.approx(branched_tree.shared_path_resistance(b, a))

    def test_shared_with_self_is_path_resistance(self, branched_tree):
        for name in branched_tree.node_names:
            assert branched_tree.shared_path_resistance(name, name) == \
                pytest.approx(branched_tree.path_resistance(name))

    def test_disjoint_paths_share_zero(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 1e-12)
        tree.add_node("b", "in", 20.0, 1e-12)
        assert tree.shared_path_resistance("a", "b") == 0.0


class TestArrays:
    def test_array_shapes_and_values(self, branched_tree):
        assert branched_tree.resistances.shape == (4,)
        assert branched_tree.capacitances.shape == (4,)
        assert branched_tree.parents[0] == -1
        np.testing.assert_allclose(
            branched_tree.resistances, [200.0, 150.0, 300.0, 500.0]
        )

    def test_arrays_read_only(self, branched_tree):
        with pytest.raises(ValueError):
            branched_tree.resistances[0] = 1.0

    def test_total_capacitance(self, branched_tree):
        assert branched_tree.total_capacitance() == pytest.approx(0.75e-12)


class TestCopyScaleValidate:
    def test_copy_is_deep(self, branched_tree):
        clone = branched_tree.copy()
        clone.set_resistance("trunk", 1.0)
        assert branched_tree.node("trunk").resistance == 200.0
        assert clone.node_names == branched_tree.node_names

    def test_scaled_scales_elmore(self, simple_line):
        from repro import elmore_delay
        scaled = simple_line.scaled(r_scale=2.0, c_scale=3.0)
        assert elmore_delay(scaled, "n5") == pytest.approx(
            6.0 * elmore_delay(simple_line, "n5")
        )

    def test_scaled_rejects_bad_factors(self, simple_line):
        with pytest.raises(ValidationError):
            simple_line.scaled(r_scale=0.0)

    def test_validate_empty_tree(self):
        with pytest.raises(ValidationError):
            RCTree("in").validate()

    def test_validate_capless_tree(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 0.0)
        with pytest.raises(ValidationError):
            tree.validate()

    def test_repr_mentions_size(self, branched_tree):
        assert "nodes=4" in repr(branched_tree)


class TestFromEdges:
    def test_from_edges_out_of_order(self):
        tree = RCTree.from_edges(
            edges=[("a", "b", 20.0), ("in", "a", 10.0)],
            capacitances={"a": 1e-12, "b": 2e-12},
        )
        assert tree.node_names == ("a", "b")
        assert tree.path_resistance("b") == pytest.approx(30.0)

    def test_from_edges_detects_double_parent(self):
        with pytest.raises(TopologyError):
            RCTree.from_edges(
                edges=[("in", "a", 10.0), ("in", "b", 10.0), ("a", "b", 5.0)],
                capacitances={},
            )

    def test_from_edges_detects_unreachable(self):
        with pytest.raises(TopologyError):
            RCTree.from_edges(
                edges=[("x", "y", 10.0)],
                capacitances={},
            )

    def test_from_edges_rejects_parent_edge_on_input(self):
        with pytest.raises(TopologyError):
            RCTree.from_edges(
                edges=[("a", "in", 10.0), ("in", "a", 5.0)],
                capacitances={},
            )

    def test_from_edges_unknown_cap_node(self):
        with pytest.raises(TopologyError):
            RCTree.from_edges(
                edges=[("in", "a", 10.0)],
                capacitances={"zz": 1e-12},
            )
