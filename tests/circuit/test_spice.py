"""Unit tests for the SPICE-subset netlist reader/writer."""

import pytest

from repro._exceptions import NetlistError
from repro.circuit import (
    parse_netlist,
    parse_rc_tree,
    tree_to_netlist,
)
from repro.circuit.spice import format_value, parse_value
from repro.core import elmore_delay


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("1.5k", 1500.0),
            ("2meg", 2e6),
            ("3MEG", 3e6),
            ("100p", 100e-12),
            ("100pF", 100e-12),
            ("50f", 50e-15),
            ("1u", 1e-6),
            ("2n", 2e-9),
            ("4m", 4e-3),
            ("1g", 1e9),
            ("1t", 1e12),
            ("3e-12", 3e-12),
            ("-2.5", -2.5),
            (".5k", 500.0),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(NetlistError):
            parse_value("abc")
        with pytest.raises(NetlistError):
            parse_value("1.2.3")
        with pytest.raises(NetlistError):
            parse_value("5x")

    def test_format_round_trip(self):
        for value in (123.0, 1.5e3, 2.2e-12, 47e-15, 0.0, 3.3):
            assert parse_value(format_value(value)) == pytest.approx(value)


SIMPLE_DECK = """\
* simple rc tree
VIN in 0 DC 1
R1 in n1 100
C1 n1 0 1p
R2 n1 n2 200
C2 n2 0 2p
.end
"""


class TestParseNetlist:
    def test_elements_counted(self):
        netlist = parse_netlist(SIMPLE_DECK)
        assert len(netlist.resistors) == 2
        assert len(netlist.capacitors) == 2
        assert len(netlist.sources) == 1

    def test_title_auto_detection(self):
        deck = "my title line\nR1 a b 100\n.end\n"
        netlist = parse_netlist(deck)
        assert netlist.title == "my title line"
        assert len(netlist.resistors) == 1

    def test_comments_and_continuations(self):
        deck = (
            "R1 a b\n"
            "+ 100 $ trailing comment\n"
            "* full comment\n"
            "C1 b 0 1p ; another trailer\n"
        )
        netlist = parse_netlist(deck)
        assert netlist.resistors[0].resistance == 100.0
        assert netlist.capacitors[0].capacitance == 1e-12

    def test_dangling_continuation_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("+ 100\n", first_line_is_title=False)

    def test_cards_after_end_ignored(self):
        deck = "R1 a b 100\n.end\nR2 b c 999\n"
        netlist = parse_netlist(deck)
        assert len(netlist.resistors) == 1

    def test_unknown_element_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("L1 a b 1u\n", first_line_is_title=False)

    def test_malformed_cards_rejected(self):
        with pytest.raises(NetlistError):
            parse_netlist("R1 a b\n", first_line_is_title=False)
        with pytest.raises(NetlistError):
            parse_netlist("C1 a 0\n", first_line_is_title=False)
        with pytest.raises(NetlistError):
            parse_netlist("V1 a 0\n", first_line_is_title=False)

    def test_node_names(self):
        netlist = parse_netlist(SIMPLE_DECK)
        assert netlist.node_names() == ["in", "n1", "n2"]


class TestParseRCTree:
    def test_parse_simple_tree(self):
        tree, amplitude = parse_rc_tree(SIMPLE_DECK)
        assert amplitude == 1.0
        assert tree.input_node == "in"
        assert set(tree.node_names) == {"n1", "n2"}
        assert elmore_delay(tree, "n2") == pytest.approx(
            100 * 3e-12 + 200 * 2e-12
        )

    def test_parallel_caps_merge(self):
        deck = SIMPLE_DECK.replace(".end", "C3 n2 0 3p\n.end")
        tree, _ = parse_rc_tree(deck)
        assert tree.node("n2").capacitance == pytest.approx(5e-12)

    def test_requires_single_source(self):
        with pytest.raises(NetlistError):
            parse_rc_tree("R1 a b 100\nC1 b 0 1p\n")
        deck = SIMPLE_DECK.replace(".end", "V2 n2 0 DC 1\n.end")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_rejects_grounded_resistor(self):
        deck = SIMPLE_DECK.replace("R2 n1 n2 200", "R2 n1 0 200")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_rejects_floating_capacitor(self):
        deck = SIMPLE_DECK.replace("C2 n2 0 2p", "C2 n2 n1 2p")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_rejects_resistor_loop(self):
        deck = SIMPLE_DECK.replace(".end", "R3 n2 in 50\n.end")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_rejects_disconnected_cap(self):
        deck = SIMPLE_DECK.replace(".end", "C9 zz 0 1p\n.end")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_source_must_reference_ground(self):
        deck = SIMPLE_DECK.replace("VIN in 0 DC 1", "VIN in n2 DC 1")
        with pytest.raises(NetlistError):
            parse_rc_tree(deck)

    def test_source_must_drive_something(self):
        with pytest.raises(NetlistError):
            parse_rc_tree("VIN in 0 DC 1\nR1 a b 1\nC1 b 0 1p\n")


class TestRoundTrip:
    def test_tree_to_netlist_round_trip(self, fig1):
        text = tree_to_netlist(fig1, title="fig1", amplitude=2.5)
        tree, amplitude = parse_rc_tree(text)
        assert amplitude == pytest.approx(2.5)
        assert set(tree.node_names) == set(fig1.node_names)
        for name in fig1.node_names:
            assert tree.node(name).capacitance == pytest.approx(
                fig1.node(name).capacitance, rel=1e-6
            )
            assert tree.node(name).resistance == pytest.approx(
                fig1.node(name).resistance, rel=1e-6
            )

    def test_round_trip_preserves_elmore(self, fig1):
        tree, _ = parse_rc_tree(tree_to_netlist(fig1))
        assert elmore_delay(tree, "n5") == pytest.approx(
            elmore_delay(fig1, "n5"), rel=1e-6
        )

    def test_write_rc_tree(self, fig1, tmp_path):
        from repro.circuit import write_rc_tree
        path = tmp_path / "fig1.sp"
        write_rc_tree(fig1, str(path), title="fig1")
        tree, _ = parse_rc_tree(path.read_text())
        assert set(tree.node_names) == set(fig1.node_names)
