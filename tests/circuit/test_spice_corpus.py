"""Parser robustness against on-disk SPICE decks (tests/data)."""

import os

import pytest

from repro.analysis import measure_delay
from repro.circuit import parse_rc_tree
from repro.core import delay_bounds, elmore_delay

DATA = os.path.join(os.path.dirname(__file__), os.pardir, "data")


def load(name):
    with open(os.path.join(DATA, name), encoding="utf-8") as handle:
        return parse_rc_tree(handle.read())


class TestLine4:
    def test_mixed_value_formats_agree(self):
        """0.12k == 120 == 1.2e2 and 120f == 0.12p == 120e-15 == 120fF."""
        tree, amplitude = load("line4.sp")
        assert amplitude == 1.0
        for k in range(1, 5):
            assert tree.node(f"n{k}").resistance == pytest.approx(120.0)
            assert tree.node(f"n{k}").capacitance == pytest.approx(120e-15)

    def test_uniform_line_elmore(self):
        tree, _ = load("line4.sp")
        expected = 120.0 * 120e-15 * (4 + 3 + 2 + 1)
        assert elmore_delay(tree, "n4") == pytest.approx(expected, rel=1e-9)


class TestBranchy:
    def test_structure(self):
        tree, amplitude = load("branchy.sp")
        assert amplitude == pytest.approx(3.3)
        assert tree.input_node == "src"
        assert set(tree.leaves()) == {"leafA", "leafB"}
        # Continuation lines assembled the split cards.
        assert tree.node("b1").resistance == pytest.approx(210.0)
        assert tree.node("b2").capacitance == pytest.approx(140e-15)

    def test_cards_after_end_ignored(self):
        tree, _ = load("branchy.sp")
        assert "after" not in tree

    def test_bounds_hold_on_parsed_circuit(self):
        tree, _ = load("branchy.sp")
        for leaf in tree.leaves():
            b = delay_bounds(tree, leaf)
            actual = measure_delay(tree, leaf)
            assert b.contains(actual)


class TestUnordered:
    def test_scrambled_cards_assemble(self):
        tree, _ = load("unordered.sp")
        assert tree.node_names == ("n1", "n2")

    def test_parallel_caps_merged_both_orientations(self):
        """C2A (n2,0) and C2B (0,n2) both land on n2."""
        tree, _ = load("unordered.sp")
        assert tree.node("n2").capacitance == pytest.approx(120e-15)

    def test_elmore(self):
        tree, _ = load("unordered.sp")
        expected = 100.0 * 200e-15 + 200.0 * 120e-15
        assert elmore_delay(tree, "n2") == pytest.approx(expected)


class TestDoctests:
    def test_module_doctests(self):
        """Docstring examples in the public modules actually run."""
        import doctest

        import repro.circuit.rctree
        import repro.core.incremental

        for module in (repro.circuit.rctree, repro.core.incremental):
            result = doctest.testmod(module)
            assert result.failed == 0, f"doctest failures in {module}"
            assert result.attempted > 0
