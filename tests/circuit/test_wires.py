"""Unit tests for the geometric wire model."""

import pytest

from repro._exceptions import ValidationError
from repro.circuit.wires import (
    DEFAULT_TECHNOLOGY,
    WireSegment,
    WireTechnology,
    tree_from_segments,
    wire_rc,
)
from repro.core import elmore_delay


class TestWireTechnology:
    def test_resistance_scales_with_squares(self):
        tech = WireTechnology(0.1, 0.0, 0.0)
        # 100 um long, 1 um wide = 100 squares.
        assert tech.segment_resistance(100e-6, 1e-6) == pytest.approx(10.0)

    def test_capacitance_area_plus_fringe(self):
        tech = WireTechnology(0.1, area_capacitance=1e-4,
                              fringe_capacitance=1e-10)
        c = tech.segment_capacitance(10e-6, 2e-6)
        assert c == pytest.approx(1e-4 * 10e-6 * 2e-6 + 2 * 1e-10 * 10e-6)

    def test_min_width_enforced(self):
        tech = WireTechnology(0.1, 0.0, 0.0, min_width=1e-6)
        with pytest.raises(ValidationError):
            tech.segment_resistance(10e-6, 0.5e-6)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValidationError):
            DEFAULT_TECHNOLOGY.segment_resistance(0.0, 1e-6)
        with pytest.raises(ValidationError):
            DEFAULT_TECHNOLOGY.segment_capacitance(1e-6, -1e-6)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            WireTechnology(0.0, 1e-4, 1e-10)
        with pytest.raises(ValidationError):
            WireTechnology(0.1, -1e-4, 1e-10)

    def test_wire_rc_helper(self):
        r, c = wire_rc(100e-6, 1e-6)
        assert r > 0 and c > 0


class TestTreeFromSegments:
    def _segments(self):
        return [
            WireSegment("drv", "mid", 100e-6, 1e-6),
            WireSegment("mid", "s1", 50e-6, 1e-6),
            WireSegment("mid", "s2", 80e-6, 1e-6),
        ]

    def test_builds_tree_with_driver(self):
        tree = tree_from_segments(self._segments(), driver_resistance=200.0)
        assert "drv" in tree
        assert "s1" in tree and "s2" in tree
        assert tree.node("drv").resistance == 200.0
        tree.validate()

    def test_total_capacitance_conserved(self):
        segs = self._segments()
        expected = sum(s.capacitance() for s in segs)
        tree = tree_from_segments(segs, driver_resistance=200.0)
        assert tree.total_capacitance() == pytest.approx(expected)

    def test_total_capacitance_conserved_multisection(self):
        segs = self._segments()
        expected = sum(s.capacitance() for s in segs)
        tree = tree_from_segments(segs, driver_resistance=200.0,
                                  sections_per_segment=4)
        assert tree.total_capacitance() == pytest.approx(expected)

    def test_pi_sections_preserve_far_end_elmore(self):
        """Pi-splitting preserves the far-end Elmore delay exactly at any
        section count: T_D = R_drv * C_wire + R_wire * C_wire / 2 (the
        distributed-wire value)."""
        seg = WireSegment("drv", "s1", 1000e-6, 1e-6)
        r_wire, c_wire = seg.resistance(), seg.capacitance()
        expected = 100.0 * c_wire + r_wire * c_wire / 2.0
        for n in (1, 2, 8, 32):
            tree = tree_from_segments([seg], 100.0, sections_per_segment=n)
            assert elmore_delay(tree, "s1") == pytest.approx(expected)

    def test_more_sections_refine_higher_moments(self):
        """The second moment (variance of h) does move with sectioning and
        converges toward the distributed limit."""
        from repro.core import transfer_moments
        seg = WireSegment("drv", "s1", 1000e-6, 1e-6)
        sigmas = []
        for n in (1, 4, 16, 64):
            tree = tree_from_segments([seg], 100.0, sections_per_segment=n)
            sigmas.append(transfer_moments(tree, 2).sigma("s1"))
        jumps = [abs(b - a) for a, b in zip(sigmas, sigmas[1:])]
        assert jumps[-1] < jumps[0]

    def test_pin_loads_added(self):
        tree = tree_from_segments(
            self._segments(), 200.0, pin_loads={"s1": 10e-15}
        )
        bare = tree_from_segments(self._segments(), 200.0)
        assert tree.node("s1").capacitance == pytest.approx(
            bare.node("s1").capacitance + 10e-15
        )

    def test_rejects_cycles(self):
        segs = self._segments() + [WireSegment("s1", "s2", 10e-6, 1e-6)]
        with pytest.raises(ValidationError):
            tree_from_segments(segs, 200.0)

    def test_rejects_unreachable(self):
        segs = [WireSegment("ghost", "s1", 10e-6, 1e-6)]
        with pytest.raises(ValidationError):
            tree_from_segments(segs, 200.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            tree_from_segments([], 200.0)
        with pytest.raises(ValidationError):
            tree_from_segments(self._segments(), 0.0)
        with pytest.raises(ValidationError):
            tree_from_segments(self._segments(), 200.0,
                               sections_per_segment=0)
