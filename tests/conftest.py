"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.circuit import RCTree, rc_line
from repro.workloads import fig1_tree, mixed_corpus, tree25


@pytest.fixture
def simple_line():
    """A 5-segment uniform RC line (100 ohm, 1 pF): T_D(n5) = 1.5 ns."""
    return rc_line(5, 100.0, 1e-12)


@pytest.fixture
def single_rc():
    """The one-pole reference: 1 kohm into 1 pF (tau = 1 ns)."""
    tree = RCTree("in")
    tree.add_node("out", "in", 1000.0, 1e-12)
    return tree


@pytest.fixture
def branched_tree():
    """A small tree with a branch point and unequal branches."""
    tree = RCTree("in")
    tree.add_node("trunk", "in", 200.0, 0.2e-12)
    tree.add_node("a1", "trunk", 150.0, 0.1e-12)
    tree.add_node("a2", "a1", 300.0, 0.4e-12)
    tree.add_node("b1", "trunk", 500.0, 0.05e-12)
    return tree


@pytest.fixture(scope="session")
def fig1():
    """The paper's Fig. 1 circuit (fitted)."""
    return fig1_tree()


@pytest.fixture(scope="session")
def paper_tree25():
    """The paper's 25-node tree (Section IV-B)."""
    return tree25()


@pytest.fixture(scope="session")
def corpus():
    """A deterministic mixed corpus of tree shapes."""
    return mixed_corpus(seed=42)


@pytest.fixture
def rng():
    """Seeded generator for test-local randomness."""
    return np.random.default_rng(20260707)
