"""Differential tests: the batched engine is pinned to the scalar path.

Every quantity the batched engine produces — Elmore delays, transfer
coefficients up to order 3, central moments, skewness, the paper's bound
pair — must match the per-node scalar recursions
(:func:`repro.core.moments.transfer_moments`,
:func:`repro.core.elmore.elmore_delays`) to 1e-9 relative tolerance on
random trees, including the degenerate shapes (single node, deep line)
where level sweeps have the least parallelism.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._exceptions import ValidationError
from repro.circuit import RCTree, balanced_tree, rc_line
from repro.core.batch import (
    batch_delay_bounds,
    batch_elmore_delays,
    batch_transfer_moments,
    compile_forest,
    compile_topology,
)
from repro.core.elmore import elmore_delays
from repro.core.incremental import IncrementalElmore
from repro.core.moments import transfer_moments
from repro.core.variation import VariationModel, monte_carlo_elmore

from tests.properties.strategies import rc_trees

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])

RTOL = 1e-9


def rebuild_with(tree, res_row, cap_row):
    """A fresh tree with the same wiring and one batch row's elements."""
    clone = RCTree(tree.input_node)
    for i, name in enumerate(tree.node_names):
        view = tree.node(name)
        clone.add_node(name, view.parent, float(res_row[i]),
                       float(cap_row[i]))
    return clone


def perturbed_batch(tree, batch, seed=0):
    """Deterministic strictly-positive (B, N) parameter matrices."""
    rng = np.random.default_rng(seed)
    n = tree.num_nodes
    r = tree.resistances * (0.5 + rng.random((batch, n)))
    c = tree.capacitances * (0.5 + rng.random((batch, n)))
    return r, c


class TestNominalAgreement:
    """B=1 with the tree's own values reproduces the scalar path."""

    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_moments_match_scalar(self, tree):
        scalar = transfer_moments(tree, 3).coefficients
        batched = batch_transfer_moments(tree, 3).coefficients
        assert batched.shape == (4, 1, tree.num_nodes)
        np.testing.assert_allclose(batched[:, 0, :], scalar, rtol=RTOL,
                                   atol=0.0)

    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_elmore_matches_scalar(self, tree):
        np.testing.assert_allclose(
            batch_elmore_delays(tree)[0], elmore_delays(tree), rtol=RTOL
        )

    @given(tree=rc_trees())
    @settings(max_examples=40, **COMMON)
    def test_derived_statistics_match_scalar(self, tree):
        scalar = transfer_moments(tree, 3)
        batched = batch_transfer_moments(tree, 3)
        for i, name in enumerate(tree.node_names):
            assert batched.variance()[0, i] == pytest.approx(
                scalar.variance(name), rel=RTOL, abs=1e-300
            )
            assert batched.sigma()[0, i] == pytest.approx(
                scalar.sigma(name), rel=RTOL, abs=1e-300
            )
            assert batched.third_central_moment()[0, i] == pytest.approx(
                scalar.third_central_moment(name), rel=RTOL, abs=1e-300
            )
            assert batched.skewness()[0, i] == pytest.approx(
                scalar.skewness(name), rel=1e-7, abs=1e-12
            )

    @given(tree=rc_trees())
    @settings(max_examples=40, **COMMON)
    def test_bounds_match_scalar(self, tree):
        lower, upper = batch_delay_bounds(tree)
        scalar = transfer_moments(tree, 2)
        for i, name in enumerate(tree.node_names):
            assert upper[0, i] == pytest.approx(scalar.mean(name), rel=RTOL)
            expected = max(scalar.mean(name) - scalar.sigma(name), 0.0)
            assert lower[0, i] == pytest.approx(expected, rel=1e-7,
                                                abs=1e-300)

    @given(tree=rc_trees())
    @settings(max_examples=30, **COMMON)
    def test_raw_moments_match_scalar(self, tree):
        scalar = transfer_moments(tree, 3)
        raw = batch_transfer_moments(tree, 3).raw_moments()
        for i, name in enumerate(tree.node_names):
            np.testing.assert_allclose(
                raw[:, 0, i], scalar.raw_moments(name), rtol=RTOL, atol=0.0
            )


class TestBatchedAgreement:
    """Every batch row equals a scalar run on a rebuilt tree."""

    @given(tree=rc_trees(), batch=st.integers(min_value=1, max_value=7),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, **COMMON)
    def test_rows_match_rebuilt_trees(self, tree, batch, seed):
        res, cap = perturbed_batch(tree, batch, seed=seed)
        batched = batch_transfer_moments(tree, 3, res, cap).coefficients
        for b in range(batch):
            scalar = transfer_moments(
                rebuild_with(tree, res[b], cap[b]), 3
            ).coefficients
            np.testing.assert_allclose(batched[:, b, :], scalar, rtol=RTOL,
                                       atol=0.0)

    @given(tree=rc_trees(), batch=st.integers(min_value=1, max_value=7),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, **COMMON)
    def test_elmore_rows_match_rebuilt_trees(self, tree, batch, seed):
        res, cap = perturbed_batch(tree, batch, seed=seed)
        batched = batch_elmore_delays(tree, res, cap)
        assert batched.shape == (batch, tree.num_nodes)
        for b in range(batch):
            np.testing.assert_allclose(
                batched[b], elmore_delays(rebuild_with(tree, res[b], cap[b])),
                rtol=RTOL,
            )

    def test_broadcast_single_r_row_against_c_batch(self):
        tree = rc_line(6, 120.0, 0.3e-12)
        _, cap = perturbed_batch(tree, 5, seed=9)
        batched = batch_elmore_delays(tree, tree.resistances, cap)
        assert batched.shape == (5, 6)
        for b in range(5):
            np.testing.assert_allclose(
                batched[b],
                elmore_delays(rebuild_with(tree, tree.resistances, cap[b])),
                rtol=RTOL,
            )


class TestEdgeTopologies:
    def test_single_node(self):
        tree = RCTree("in")
        tree.add_node("out", "in", 1000.0, 1e-12)
        batched = batch_transfer_moments(tree, 3)
        scalar = transfer_moments(tree, 3)
        np.testing.assert_allclose(
            batched.coefficients[:, 0, :], scalar.coefficients, rtol=RTOL
        )
        assert batched.elmore_delays()[0, 0] == pytest.approx(1e-9)

    def test_deep_line(self):
        tree = rc_line(80, 35.0, 40e-15, driver_resistance=200.0)
        res, cap = perturbed_batch(tree, 3, seed=4)
        batched = batch_transfer_moments(tree, 3, res, cap).coefficients
        for b in range(3):
            scalar = transfer_moments(
                rebuild_with(tree, res[b], cap[b]), 3
            ).coefficients
            np.testing.assert_allclose(batched[:, b, :], scalar, rtol=RTOL,
                                       atol=0.0)

    def test_wide_star(self):
        tree = RCTree("in")
        tree.add_node("hub", "in", 100.0, 50e-15)
        for k in range(30):
            tree.add_node(f"leaf{k}", "hub", 60.0 + k, (k + 1) * 1e-15)
        np.testing.assert_allclose(
            batch_elmore_delays(tree)[0], elmore_delays(tree), rtol=RTOL
        )

    def test_zero_capacitance_nodes(self):
        """Steiner points (C = 0) are legal as long as the tree has C."""
        tree = RCTree("in")
        tree.add_node("s1", "in", 100.0, 0.0)
        tree.add_node("a", "s1", 50.0, 1e-13)
        tree.add_node("b", "s1", 70.0, 2e-13)
        np.testing.assert_allclose(
            batch_transfer_moments(tree, 3).coefficients[:, 0, :],
            transfer_moments(tree, 3).coefficients,
            rtol=RTOL, atol=0.0,
        )


class TestForest:
    def test_forest_matches_per_tree_scalar(self):
        trees = [
            rc_line(5, 100.0, 1e-12),
            balanced_tree(3, 2, 40.0, 30e-15, driver_resistance=150.0),
            RCTree("in"),
        ]
        trees[2].add_node("out", "in", 500.0, 2e-12)
        topology, offsets = compile_forest(trees)
        moments = batch_transfer_moments(topology, 3)
        for k, tree in enumerate(trees):
            scalar = transfer_moments(tree, 3).coefficients
            span = slice(offsets[k], offsets[k] + tree.num_nodes)
            np.testing.assert_allclose(
                moments.coefficients[:, 0, span], scalar, rtol=RTOL,
                atol=0.0,
            )

    def test_forest_names_qualified(self):
        trees = [rc_line(2, 10.0, 1e-13), rc_line(2, 20.0, 2e-13)]
        topology, offsets = compile_forest(trees)
        assert topology.index_of("0/n1") == 0
        assert topology.index_of("1/n1") == offsets[1]

    def test_empty_forest_rejected(self):
        with pytest.raises(ValidationError):
            compile_forest([])


class TestTopologyCache:
    def test_compile_is_cached(self):
        tree = rc_line(4, 100.0, 1e-12)
        assert compile_topology(tree) is compile_topology(tree)

    def test_mutation_invalidates_cache(self):
        tree = rc_line(4, 100.0, 1e-12)
        first = compile_topology(tree)
        tree.add_node("n5", "n4", 100.0, 1e-12)
        second = compile_topology(tree)
        assert second is not first
        assert second.num_nodes == 5
        # The old handle still evaluates its own 4-node world.
        assert batch_elmore_delays(first).shape == (1, 4)

    def test_parameter_edit_recompiles_but_matches(self):
        tree = rc_line(4, 100.0, 1e-12)
        compile_topology(tree)
        tree.set_capacitance("n2", 3e-12)
        np.testing.assert_allclose(
            batch_elmore_delays(tree)[0], elmore_delays(tree), rtol=RTOL
        )


class TestValidation:
    @pytest.fixture
    def tree(self):
        return rc_line(4, 100.0, 1e-12)

    def test_order_validation(self, tree):
        with pytest.raises(ValidationError):
            batch_transfer_moments(tree, 0)
        with pytest.raises(ValidationError):
            batch_transfer_moments(tree, -2)
        with pytest.raises(ValidationError):
            batch_transfer_moments(tree, 2.5)

    def test_shape_validation(self, tree):
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, np.ones((2, 9)))
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, np.ones((3, 3, 4)))

    def test_row_count_mismatch(self, tree):
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, np.ones((2, 4)),
                                np.ones((3, 4)) * 1e-12)

    def test_nonpositive_resistance_rejected(self, tree):
        res = np.broadcast_to(tree.resistances, (2, 4)).copy()
        res[1, 2] = 0.0
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, res)

    def test_negative_capacitance_rejected(self, tree):
        cap = np.broadcast_to(tree.capacitances, (2, 4)).copy()
        cap[0, 1] = -1e-15
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, capacitances=cap)

    def test_capacitance_free_row_rejected(self, tree):
        cap = np.broadcast_to(tree.capacitances, (2, 4)).copy()
        cap[1, :] = 0.0
        with pytest.raises(ValidationError):
            batch_elmore_delays(tree, capacitances=cap)

    def test_unknown_node_name(self, tree):
        with pytest.raises(ValidationError):
            batch_transfer_moments(tree, 1).mean("nope")


class TestConsumers:
    def test_monte_carlo_batch_equals_loop(self, branched_tree):
        model = VariationModel(resistance_sigma=0.12,
                               capacitance_sigma=0.07)
        batched = monte_carlo_elmore(branched_tree, "a2", model,
                                     samples=200, seed=5, method="batch")
        looped = monte_carlo_elmore(branched_tree, "a2", model,
                                    samples=200, seed=5, method="loop")
        np.testing.assert_allclose(batched, looped, rtol=RTOL)

    def test_monte_carlo_bad_method(self, branched_tree):
        with pytest.raises(ValidationError):
            monte_carlo_elmore(branched_tree, "a2", VariationModel(),
                               samples=5, method="magic")

    def test_incremental_sweep_matches_delays(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        inc.add_capacitance("a1", 0.3e-12)
        inc.set_resistance("trunk", 140.0)
        snapshot = inc.delays()
        swept = inc.sweep()
        names = branched_tree.node_names
        np.testing.assert_allclose(
            swept[0], [snapshot[name] for name in names], rtol=RTOL
        )
        # And a batched what-if over the same cached topology.
        res, cap = perturbed_batch(branched_tree, 4, seed=1)
        swept = inc.sweep(res, cap)
        for b in range(4):
            np.testing.assert_allclose(
                swept[b],
                elmore_delays(rebuild_with(branched_tree, res[b], cap[b])),
                rtol=RTOL,
            )
