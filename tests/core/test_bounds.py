"""Unit tests for the paper's Theorem and Corollaries 1-3."""

import numpy as np
import pytest

from repro import RCTree
from repro._exceptions import AnalysisError
from repro.analysis import ExactAnalysis, measure_delay, sample_waveform
from repro.core.bounds import (
    area_theorem_delay,
    delay_bounds,
    delay_lower_bound,
    delay_upper_bound,
    output_derivative_moments,
    rise_time_estimate,
)
from repro.core.moments import transfer_moments
from repro.signals import (
    ExponentialInput,
    RaisedCosineRamp,
    SaturatedRamp,
    SmoothstepRamp,
    StepInput,
)


class TestStepBounds:
    """The Theorem and Corollary 1 on the step response."""

    def test_upper_bound_is_elmore(self, fig1):
        assert delay_upper_bound(fig1, "n5") == pytest.approx(
            1.2e-9, rel=1e-3
        )

    def test_bounds_contain_actual_delay(self, corpus):
        for tree in corpus:
            analysis = ExactAnalysis(tree)
            bounds = delay_bounds(tree)
            for name in tree.node_names:
                actual = measure_delay(analysis, name)
                b = bounds[name]
                assert b.contains(actual), (
                    f"bound violated at {name}: "
                    f"{b.lower} <= {actual} <= {b.upper}"
                )

    def test_lower_bound_clips_at_zero(self, fig1):
        # At the driving point sigma > T_D, so the bound clips to 0.
        assert delay_lower_bound(fig1, "n1") == 0.0
        assert delay_lower_bound(fig1, "n5") == pytest.approx(
            0.2e-9, rel=2e-2
        )

    def test_single_rc_exact_values(self, single_rc):
        tau = 1e-6 * 1e-3  # 1000 ohm * 1 pF
        assert delay_upper_bound(single_rc, "out") == pytest.approx(tau)
        # mu = sigma = tau for one pole: lower bound is exactly 0.
        assert delay_lower_bound(single_rc, "out") == 0.0

    def test_bound_width_positive(self, corpus):
        for tree in corpus:
            for b in delay_bounds(tree).values():
                assert b.width >= 0.0
                assert b.lower >= 0.0

    def test_moments_reuse(self, fig1):
        moments = transfer_moments(fig1, 3)
        b1 = delay_bounds(fig1, "n5")
        b2 = delay_bounds(fig1, "n5", moments=moments)
        assert b1.upper == b2.upper and b1.lower == b2.lower


class TestGeneralizedBounds:
    """Corollary 2: the bound holds for unimodal-derivative inputs."""

    @pytest.mark.parametrize(
        "signal",
        [
            SaturatedRamp(1e-9),
            SaturatedRamp(10e-9),
            RaisedCosineRamp(2e-9),
            SmoothstepRamp(3e-9),
            ExponentialInput(1e-9),
        ],
        ids=["ramp1n", "ramp10n", "raised_cos", "smoothstep", "exponential"],
    )
    def test_bounds_contain_measured_delay(self, fig1, signal):
        analysis = ExactAnalysis(fig1)
        for node in ("n1", "n5", "n7"):
            b = delay_bounds(fig1, node, signal=signal)
            actual = measure_delay(analysis, node, signal)
            assert b.contains(actual, rel_tol=1e-6), (
                f"{node}/{signal.describe()}: "
                f"{b.lower} <= {actual} <= {b.upper}"
            )

    def test_symmetric_input_upper_bound_is_elmore(self, fig1):
        """For symmetric-derivative inputs the measured-from-input-50%
        upper bound equals T_D regardless of rise time."""
        td = delay_upper_bound(fig1, "n5")
        for tr in (0.1e-9, 1e-9, 10e-9):
            b = delay_bounds(fig1, "n5", signal=SaturatedRamp(tr))
            assert b.upper == pytest.approx(td, rel=1e-12)

    def test_asymmetric_input_upper_bound_exceeds_elmore(self, fig1):
        """The exponential's mean-median gap adds positive margin."""
        td = delay_upper_bound(fig1, "n5")
        b = delay_bounds(fig1, "n5", signal=ExponentialInput(1e-9))
        assert b.upper > td

    def test_output_derivative_moments_additivity(self, fig1):
        moments = transfer_moments(fig1, 3)
        signal = SaturatedRamp(2e-9)
        out = output_derivative_moments(moments, "n5", signal)
        din = signal.derivative_moments()
        assert out["mean"] == pytest.approx(moments.mean("n5") + din.mean)
        assert out["mu2"] == pytest.approx(
            moments.variance("n5") + din.mu2
        )
        assert out["mu3"] == pytest.approx(
            moments.third_central_moment("n5") + din.mu3
        )

    def test_non_unimodal_input_rejected(self, fig1):
        from repro.signals import PWLSignal
        # Two separated ramps: bimodal derivative.
        bimodal = PWLSignal(
            times=[0.0, 1e-9, 4e-9, 5e-9],
            values=[0.0, 0.5, 0.5, 1.0],
        )
        assert not bimodal.derivative_unimodal
        with pytest.raises(AnalysisError):
            delay_bounds(fig1, "n5", signal=bimodal)


class TestCorollary3:
    """Delay -> T_D from below as rise time increases."""

    def test_delay_increases_with_rise_time(self, fig1):
        analysis = ExactAnalysis(fig1)
        td = delay_upper_bound(fig1, "n5")
        rts = [0.5e-9, 1e-9, 2e-9, 5e-9, 10e-9, 30e-9]
        delays = [
            measure_delay(analysis, "n5", SaturatedRamp(tr)) for tr in rts
        ]
        assert all(a < b for a, b in zip(delays, delays[1:]))
        assert all(d <= td * (1 + 1e-12) for d in delays)

    def test_delay_converges_to_elmore(self, fig1):
        analysis = ExactAnalysis(fig1)
        td = delay_upper_bound(fig1, "n5")
        d = measure_delay(analysis, "n5", SaturatedRamp(100e-9))
        assert d == pytest.approx(td, rel=2e-3)

    def test_skewness_decays_with_rise_time(self, fig1):
        gammas = [
            delay_bounds(fig1, "n5", signal=SaturatedRamp(tr)).skewness
            for tr in (1e-9, 5e-9, 25e-9)
        ]
        assert gammas[0] > gammas[1] > gammas[2] > 0.0


class TestRiseTimeEstimate:
    def test_sigma_tracks_measured_rise_time(self, corpus):
        """sigma is proportional to the 10-90% rise time: the ratio stays
        within a band across shapes (exact for one pole: ln9 ~ 2.197)."""
        from repro.analysis import output_rise_time
        ratios = []
        for tree in corpus[:5]:
            leaf = tree.leaves()[0]
            sigma = rise_time_estimate(tree, leaf)
            tr = output_rise_time(tree, leaf)
            ratios.append(tr / sigma)
        assert all(1.0 < r < 3.0 for r in ratios)

    def test_single_pole_value(self, single_rc):
        from repro.analysis import output_rise_time
        tau = 1e-9
        assert rise_time_estimate(single_rc, "out") == pytest.approx(tau)
        assert output_rise_time(single_rc, "out") == pytest.approx(
            tau * np.log(9.0), rel=1e-9
        )


class TestAreaTheorem:
    """eq. (48): area between input and output equals T_D."""

    @pytest.mark.parametrize(
        "signal",
        [StepInput(), SaturatedRamp(2e-9), ExponentialInput(0.5e-9)],
        ids=["step", "ramp", "exponential"],
    )
    def test_area_equals_elmore(self, fig1, signal):
        analysis = ExactAnalysis(fig1)
        transfer = analysis.transfer("n5")
        horizon = max(signal.settle_time, 0.0) + transfer.settle_time(1e-13)
        t = np.linspace(0.0, horizon, 40001)
        area = area_theorem_delay(
            t, signal.value(t), transfer.response(signal, t)
        )
        assert area == pytest.approx(
            delay_upper_bound(fig1, "n5"), rel=1e-6
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            area_theorem_delay(np.arange(3.0), np.arange(3.0), np.arange(4.0))


class TestContainsTolerance:
    """Regression: ``contains`` needed an absolute-tolerance term.

    At a degenerate node (both bounds exactly zero — e.g. the input
    node's trivial bound pair) the old purely-relative pad collapsed to
    zero width, rejecting measured delays one rounding error above
    zero."""

    def _degenerate(self):
        from repro.core.bounds import DelayBounds
        return DelayBounds(node="in", upper=0.0, lower=0.0, mean=0.0,
                           sigma=0.0, skewness=0.0, signal="step")

    def test_zero_bounds_admit_rounding_noise(self):
        b = self._degenerate()
        assert b.contains(0.0)
        assert b.contains(1e-18)      # below the default abs_tol pad
        assert b.contains(-1e-18)
        assert not b.contains(1e-12)  # a genuine miss still fails

    def test_abs_tol_is_adjustable(self):
        b = self._degenerate()
        assert not b.contains(1e-12, abs_tol=1e-15)
        assert b.contains(1e-12, abs_tol=1e-9)
        assert not b.contains(5e-19, abs_tol=1e-19)

    def test_relative_pad_unchanged_for_normal_bounds(self):
        from repro.core.bounds import DelayBounds
        b = DelayBounds(node="x", upper=2e-9, lower=1e-9, mean=1.5e-9,
                        sigma=1e-10, skewness=0.5, signal="step")
        assert b.contains(2e-9 * (1 + 1e-10))     # inside the rel pad
        assert not b.contains(2e-9 * (1 + 1e-6))  # outside it
        assert b.contains(1.5e-9)
        assert b.width == pytest.approx(1e-9)
