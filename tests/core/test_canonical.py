"""Unit tests for the canonical first-order SSTA form (Clark max/add)."""

import math

import numpy as np
import pytest

from repro._exceptions import AnalysisError
from repro.core.canonical import (
    CanonicalForm,
    canonical_add,
    canonical_constant,
    canonical_max,
    canonical_max_many,
    covariance,
    normal_cdf,
    normal_pdf,
    normal_quantile,
)


def sample(form, z, extra):
    """Evaluate a canonical form on explicit draws.

    ``z`` is a (B, M) matrix of shared-variable draws; ``extra`` maps
    residual labels to (B,) standard-normal draws (one stream per label,
    shared across forms — exactly the correlation model the form claims).
    """
    out = np.full(z.shape[0], form.mu)
    out += z @ form.a
    for label, coeff in form.resid.items():
        out += coeff * extra[label]
    return out


class TestNormalHelpers:
    def test_cdf_pdf_basics(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.0) == pytest.approx(0.8413447460685429, rel=1e-12)
        assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_quantile_inverts_cdf(self):
        for p in (1e-9, 0.01, 0.31, 0.5, 0.84134474, 0.999, 1 - 1e-9):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(
                p, rel=1e-9, abs=1e-12
            )

    def test_quantile_domain(self):
        with pytest.raises(AnalysisError):
            normal_quantile(0.0)
        with pytest.raises(AnalysisError):
            normal_quantile(1.0)


class TestFormBasics:
    def test_variance_and_sigma(self):
        form = CanonicalForm(2.0, np.array([3.0, 4.0]), {"e": 12.0})
        assert form.variance == pytest.approx(9 + 16 + 144)
        assert form.sigma == pytest.approx(13.0)

    def test_constant(self):
        form = canonical_constant(5.0, 3)
        assert form.variance == 0.0
        assert form.cdf(5.0) == 1.0
        assert form.cdf(4.999) == 0.0
        assert form.quantile(0.99) == 5.0

    def test_cdf_quantile_roundtrip(self):
        form = CanonicalForm(10.0, np.array([2.0]), {"e": 1.0})
        t = form.quantile(0.9)
        assert form.cdf(t) == pytest.approx(0.9, rel=1e-9)
        assert form.sigma_corner(3.0) == pytest.approx(10.0 + 3 * form.sigma)

    def test_nonfinite_rejected(self):
        with pytest.raises(AnalysisError):
            CanonicalForm(float("nan"), np.array([1.0]))
        with pytest.raises(AnalysisError):
            CanonicalForm(0.0, np.array([np.inf]))

    def test_mismatched_spaces_rejected(self):
        x = canonical_constant(0.0, 2)
        y = canonical_constant(0.0, 3)
        with pytest.raises(AnalysisError):
            canonical_add(x, y)


class TestAddAndCovariance:
    def test_add_is_exact(self):
        x = CanonicalForm(1.0, np.array([1.0, 0.0]), {"p": 2.0})
        y = CanonicalForm(2.0, np.array([0.5, -1.0]), {"p": 1.0, "q": 3.0})
        s = canonical_add(x, y)
        assert s.mu == 3.0
        np.testing.assert_allclose(s.a, [1.5, -1.0])
        assert s.resid == {"p": 3.0, "q": 3.0}
        # Var(x+y) = var x + var y + 2 cov, honored exactly.
        assert s.variance == pytest.approx(
            x.variance + y.variance + 2 * covariance(x, y)
        )

    def test_covariance_shared_labels(self):
        x = CanonicalForm(0.0, np.array([1.0]), {"shared": 2.0, "ox": 5.0})
        y = CanonicalForm(0.0, np.array([3.0]), {"shared": 4.0, "oy": 7.0})
        assert covariance(x, y) == pytest.approx(1 * 3 + 2 * 4)

    def test_shifted(self):
        x = CanonicalForm(1.0, np.array([1.0]), {"e": 1.0})
        y = x.shifted(2.5)
        assert y.mu == 3.5
        assert y.variance == x.variance


class TestClarkMax:
    def test_independent_standard_normals(self):
        # E[max(X,Y)] = 1/sqrt(pi), Var = 1 - 1/pi for iid N(0,1).
        x = CanonicalForm(0.0, np.array([0.0]), {"x": 1.0})
        y = CanonicalForm(0.0, np.array([0.0]), {"y": 1.0})
        m, tightness = canonical_max(x, y)
        assert tightness == pytest.approx(0.5)
        assert m.mu == pytest.approx(1.0 / math.sqrt(math.pi), rel=1e-12)
        assert m.variance == pytest.approx(1.0 - 1.0 / math.pi, rel=1e-12)

    def test_dominant_operand_passes_through(self):
        x = CanonicalForm(100.0, np.array([1.0]), {"x": 0.5})
        y = CanonicalForm(0.0, np.array([0.2]), {"y": 0.1})
        m, tightness = canonical_max(x, y)
        assert tightness == pytest.approx(1.0, abs=1e-12)
        assert m.mu == pytest.approx(100.0, rel=1e-12)
        assert m.variance == pytest.approx(x.variance, rel=1e-9)

    def test_degenerate_theta_picks_larger_mean(self):
        shared = CanonicalForm(1.0, np.array([2.0]), {"e": 1.0})
        shifted = shared.shifted(3.0)
        m, tightness = canonical_max(shared, shifted)
        assert m.mu == shifted.mu
        assert tightness == 0.0
        assert m.variance == pytest.approx(shared.variance)

    def test_against_monte_carlo_correlated(self):
        # Correlated through both a shared variable and a shared label.
        x = CanonicalForm(1.0, np.array([0.8, 0.0]), {"common": 0.5,
                                                      "x": 0.3})
        y = CanonicalForm(1.2, np.array([0.4, 0.6]), {"common": 0.5,
                                                      "y": 0.4})
        rng = np.random.default_rng(7)
        B = 400_000
        z = rng.normal(size=(B, 2))
        extra = {k: rng.normal(size=B) for k in ("common", "x", "y")}
        mx = np.maximum(sample(x, z, extra), sample(y, z, extra))
        m, _ = canonical_max(x, y)
        assert m.mu == pytest.approx(float(mx.mean()), rel=5e-3)
        assert m.sigma == pytest.approx(float(mx.std()), rel=1e-2)

    def test_max_conserves_clark_variance_exactly(self):
        x = CanonicalForm(1.0, np.array([0.8]), {"x": 0.3})
        y = CanonicalForm(1.1, np.array([0.7]), {"y": 0.4})
        var_x, var_y, cov = x.variance, y.variance, covariance(x, y)
        theta = math.sqrt(var_x + var_y - 2 * cov)
        alpha = (x.mu - y.mu) / theta
        t = normal_cdf(alpha)
        pdf = normal_pdf(alpha)
        mean = x.mu * t + y.mu * (1 - t) + theta * pdf
        second = ((x.mu**2 + var_x) * t + (y.mu**2 + var_y) * (1 - t)
                  + (x.mu + y.mu) * theta * pdf)
        m, _ = canonical_max(x, y)
        assert m.mu == pytest.approx(mean, rel=1e-14)
        assert m.variance == pytest.approx(second - mean**2, rel=1e-12)

    def test_max_label_used_for_residual(self):
        x = CanonicalForm(0.0, np.array([0.0]), {"x": 1.0})
        y = CanonicalForm(0.0, np.array([0.0]), {"y": 1.0})
        m, _ = canonical_max(x, y, label="here")
        assert "here" in m.resid

    def test_reconvergence_beats_scalar_residual(self):
        # A common upstream segment feeding both operands: with labeled
        # residuals the max knows the operands are highly correlated.
        common = CanonicalForm(5.0, np.array([0.0]), {"stem": 1.0})
        x = canonical_add(common, CanonicalForm(0.1, np.array([0.0]),
                                                {"bx": 0.01}))
        y = canonical_add(common, CanonicalForm(0.0, np.array([0.0]),
                                                {"by": 0.01}))
        m, tightness = canonical_max(x, y)
        # Nearly perfectly correlated: x dominates and the max keeps the
        # stem's full variance instead of averaging it away.
        assert tightness > 0.99
        assert m.variance == pytest.approx(x.variance, rel=1e-2)


class TestMaxMany:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(3)
        forms = [
            CanonicalForm(float(mu), np.array([0.1 * i]), {f"e{i}": 0.2})
            for i, mu in enumerate(rng.normal(5.0, 1.0, size=6))
        ]
        m, weights = canonical_max_many(forms)
        assert len(weights) == 6
        assert all(w >= 0.0 for w in weights)
        assert sum(weights) == pytest.approx(1.0)
        assert m.mu >= max(f.mu for f in forms) - 1e-12

    def test_single_form_identity(self):
        form = CanonicalForm(2.0, np.array([1.0]), {"e": 0.5})
        m, weights = canonical_max_many([form])
        assert m.mu == form.mu
        assert weights == [1.0]

    def test_criticality_matches_monte_carlo(self):
        forms = [
            CanonicalForm(0.0, np.array([0.3]), {"a": 0.9}),
            CanonicalForm(0.3, np.array([0.3]), {"b": 0.9}),
            CanonicalForm(-0.4, np.array([0.3]), {"c": 0.9}),
        ]
        _, weights = canonical_max_many(forms)
        rng = np.random.default_rng(11)
        B = 300_000
        z = rng.normal(size=(B, 1))
        extra = {k: rng.normal(size=B) for k in ("a", "b", "c")}
        stacked = np.stack([sample(f, z, extra) for f in forms])
        counts = np.bincount(np.argmax(stacked, axis=0), minlength=3) / B
        for w, c in zip(weights, counts):
            assert w == pytest.approx(float(c), abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            canonical_max_many([])
