"""Tests for the combined (intersected) delay bounds."""

import pytest

from repro.analysis import ExactAnalysis, measure_delay
from repro.core.combined import combined_delay_bounds


class TestCombinedBounds:
    def test_tighter_or_equal_to_both(self, fig1):
        for b in combined_delay_bounds(fig1).values():
            e_lo, e_hi = b.elmore_pair
            p_lo, p_hi = b.prh_pair
            assert b.lower >= max(e_lo, p_lo) - 1e-30
            assert b.upper <= min(e_hi, p_hi) + 1e-30
            assert b.width <= (e_hi - e_lo) + 1e-30
            assert b.width <= (p_hi - p_lo) + 1e-30

    def test_contains_actual_delay(self, fig1, corpus):
        for tree in [fig1] + corpus[:4]:
            analysis = ExactAnalysis(tree)
            for name, b in combined_delay_bounds(tree).items():
                actual = measure_delay(analysis, name)
                assert b.contains(actual, rel_tol=1e-6)

    def test_table1_provenance(self, fig1):
        """The paper's observation encoded: at the loads PRH's t_min wins
        the lower edge; at the driving point the two uppers tie at T_D."""
        bounds = combined_delay_bounds(fig1)
        assert bounds["n5"].tightest_lower == "prh"
        assert bounds["n7"].tightest_lower == "prh"
        at_drv = bounds["n1"]
        assert at_drv.elmore_pair[1] == pytest.approx(
            at_drv.prh_pair[1], rel=1e-12
        )

    def test_single_node_api(self, fig1):
        b = combined_delay_bounds(fig1, "n5")
        assert b.node == "n5"
        assert 0.4e-9 < b.lower < b.upper < 1.4e-9

    def test_elmore_upper_can_win(self, corpus):
        """Across a corpus, each family wins the upper edge somewhere."""
        winners = set()
        for tree in corpus:
            for b in combined_delay_bounds(tree).values():
                winners.add(b.tightest_upper)
        assert "elmore" in winners
        assert "prh" in winners
