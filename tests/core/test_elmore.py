"""Unit tests for Elmore delay and the PRH path-traced time constants."""

import numpy as np
import pytest

from repro import RCTree
from repro._exceptions import ValidationError
from repro.core.elmore import (
    downstream_capacitance,
    elmore_delay,
    elmore_delay_quadratic,
    elmore_delays,
    rph_time_constants,
)


class TestDownstreamCapacitance:
    def test_line(self, simple_line):
        cdown = downstream_capacitance(simple_line)
        np.testing.assert_allclose(cdown, [5e-12, 4e-12, 3e-12, 2e-12, 1e-12])

    def test_branched(self, branched_tree):
        cdown = downstream_capacitance(branched_tree)
        expect = {
            "trunk": 0.75e-12, "a1": 0.5e-12, "a2": 0.4e-12, "b1": 0.05e-12,
        }
        for name, value in expect.items():
            assert cdown[branched_tree.index_of(name)] == pytest.approx(value)


class TestElmoreDelay:
    def test_hand_computed_branch(self, branched_tree):
        # T_D(a2) = R_trunk * Ctot + R_a1 * (C_a1 + C_a2) + R_a2 * C_a2.
        expected = (
            200.0 * 0.75e-12 + 150.0 * 0.5e-12 + 300.0 * 0.4e-12
        )
        assert elmore_delay(branched_tree, "a2") == pytest.approx(expected)

    def test_all_nodes_map(self, branched_tree):
        delays = elmore_delay(branched_tree)
        assert set(delays) == set(branched_tree.node_names)
        assert delays["a2"] == pytest.approx(
            elmore_delay(branched_tree, "a2")
        )

    def test_monotone_along_root_paths(self, corpus):
        """T_D never decreases walking away from the driver."""
        for tree in corpus:
            delays = elmore_delay(tree)
            for name in tree.node_names:
                parent = tree.parent_of(name)
                if parent != tree.input_node:
                    assert delays[name] >= delays[parent] - 1e-30

    def test_matches_quadratic_oracle(self, corpus):
        for tree in corpus:
            fast = elmore_delay(tree)
            for name in tree.node_names:
                assert fast[name] == pytest.approx(
                    elmore_delay_quadratic(tree, name), rel=1e-10
                )

    def test_fig1_table1_column3(self, fig1):
        assert elmore_delay(fig1, "n1") == pytest.approx(0.55e-9, rel=1e-3)
        assert elmore_delay(fig1, "n5") == pytest.approx(1.20e-9, rel=1e-3)
        assert elmore_delay(fig1, "n7") == pytest.approx(0.75e-9, rel=1e-3)

    def test_requires_capacitance(self):
        tree = RCTree("in")
        tree.add_node("a", "in", 10.0, 0.0)
        with pytest.raises(ValidationError):
            elmore_delays(tree)


class TestRPHTimeConstants:
    def test_ordering_tr_td_tp(self, corpus):
        """T_R <= T_D <= T_P at every node of every tree."""
        for tree in corpus:
            constants = rph_time_constants(tree)
            assert np.all(constants.t_r <= constants.t_d * (1 + 1e-12))
            assert np.all(constants.t_d <= constants.t_p * (1 + 1e-12))

    def test_tp_definition(self, branched_tree):
        constants = rph_time_constants(branched_tree)
        expected = sum(
            branched_tree.path_resistance(k) * branched_tree.node(k).capacitance
            for k in branched_tree.node_names
        )
        assert constants.t_p == pytest.approx(expected)

    def test_td_matches_elmore(self, fig1):
        constants = rph_time_constants(fig1)
        np.testing.assert_allclose(
            constants.t_d, elmore_delays(fig1), rtol=1e-12
        )

    def test_tr_quadratic_oracle(self, corpus):
        """T_R_i = sum_k R_ki^2 C_k / R_ii via direct double loop."""
        for tree in corpus[:4]:
            constants = rph_time_constants(tree)
            for name in tree.node_names:
                w = sum(
                    tree.shared_path_resistance(k, name) ** 2
                    * tree.node(k).capacitance
                    for k in tree.node_names
                )
                expected = w / tree.path_resistance(name)
                i = tree.index_of(name)
                assert constants.t_r[i] == pytest.approx(expected, rel=1e-9)

    def test_driving_point_tr_equals_td(self):
        """At a node whose root path is fully shared with every other node
        (the driving point behind a single driver resistor), T_R = T_D."""
        tree = RCTree("in")
        tree.add_node("drv", "in", 100.0, 1e-12)
        tree.add_node("x", "drv", 50.0, 2e-12)
        tree.add_node("y", "drv", 75.0, 3e-12)
        constants = rph_time_constants(tree)
        at = constants.at("drv")
        assert at.t_r == pytest.approx(at.t_d)

    def test_at_accessor(self, fig1):
        at = rph_time_constants(fig1).at("n5")
        assert at.t_d == pytest.approx(1.2e-9, rel=1e-3)
        assert at.t_p > at.t_d > at.t_r > 0
