"""Tests for the incremental Elmore oracle."""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.circuit import balanced_tree, rc_line
from repro.core import elmore_delay
from repro.core.incremental import IncrementalElmore


class TestConsistencyWithBatch:
    def test_initial_state_matches(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        batch = elmore_delay(branched_tree)
        for name, expected in batch.items():
            assert inc.delay(name) == pytest.approx(expected, rel=1e-12)
        assert inc.delays() == pytest.approx(batch, rel=1e-12)

    def test_random_edit_sequence(self, corpus, rng):
        for tree in corpus[:4]:
            inc = IncrementalElmore(tree)
            shadow = tree.copy()
            names = list(tree.node_names)
            for _ in range(30):
                name = names[int(rng.integers(0, len(names)))]
                kind = rng.integers(0, 3)
                if kind == 0:
                    c = float(rng.uniform(0, 2e-12))
                    inc.set_capacitance(name, c)
                    shadow.set_capacitance(name, c)
                elif kind == 1:
                    d = float(rng.uniform(0, 1e-13))
                    inc.add_capacitance(name, d)
                    shadow.add_load(name, d)
                else:
                    r = float(rng.uniform(1.0, 5e3))
                    inc.set_resistance(name, r)
                    shadow.set_resistance(name, r)
                probe = names[int(rng.integers(0, len(names)))]
                assert inc.delay(probe) == pytest.approx(
                    elmore_delay(shadow, probe), rel=1e-10
                )

    def test_as_tree_round_trip(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        inc.set_capacitance("a1", 0.9e-12)
        inc.set_resistance("trunk", 333.0)
        rebuilt = inc.as_tree()
        assert rebuilt.node("a1").capacitance == pytest.approx(0.9e-12)
        assert rebuilt.node("trunk").resistance == pytest.approx(333.0)
        for name in branched_tree.node_names:
            assert inc.delay(name) == pytest.approx(
                elmore_delay(rebuilt, name), rel=1e-12
            )


class TestEditSemantics:
    def test_cap_edit_affects_only_shared_paths(self):
        line = rc_line(5, 100.0, 1e-12)
        inc = IncrementalElmore(line)
        before = {n: inc.delay(n) for n in line.node_names}
        inc.add_capacitance("n3", 1e-12)
        # Delay at n2 changes by R_{n3,n2} * dC = 200 * 1e-12.
        assert inc.delay("n2") - before["n2"] == pytest.approx(2e-10)
        # At n5 the shared path is up to n3: 300 ohm.
        assert inc.delay("n5") - before["n5"] == pytest.approx(3e-10)

    def test_resistance_edit_affects_downstream_only(self):
        line = rc_line(5, 100.0, 1e-12)
        inc = IncrementalElmore(line)
        before = {n: inc.delay(n) for n in line.node_names}
        inc.set_resistance("n3", 200.0)
        assert inc.delay("n2") == pytest.approx(before["n2"])
        # Downstream nodes gain dR * Cdown(n3) = 100 * 3e-12.
        assert inc.delay("n4") - before["n4"] == pytest.approx(3e-10)

    def test_original_tree_untouched(self, branched_tree):
        base = elmore_delay(branched_tree, "a2")
        inc = IncrementalElmore(branched_tree)
        inc.set_capacitance("a2", 5e-12)
        assert elmore_delay(branched_tree, "a2") == pytest.approx(base)

    def test_accessors(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        assert inc.capacitance("a1") == pytest.approx(0.1e-12)
        assert inc.resistance("trunk") == pytest.approx(200.0)
        assert inc.total_capacitance() == pytest.approx(0.75e-12)

    def test_apply_batch(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        inc.apply([
            ("C", "a1", 0.5e-12),
            ("dC", "b1", 0.1e-12),
            ("R", "trunk", 100.0),
        ])
        assert inc.capacitance("a1") == pytest.approx(0.5e-12)
        assert inc.capacitance("b1") == pytest.approx(0.15e-12)
        assert inc.resistance("trunk") == 100.0

    def test_validation(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        with pytest.raises(ValidationError):
            inc.delay("ghost")
        with pytest.raises(ValidationError):
            inc.set_capacitance("a1", -1.0)
        with pytest.raises(ValidationError):
            inc.set_resistance("a1", 0.0)
        with pytest.raises(ValidationError):
            inc.add_capacitance("a1", -1.0)
        with pytest.raises(ValidationError):
            inc.apply([("X", "a1", 1.0)])


class TestComplexity:
    def test_balanced_tree_edits_touch_log_nodes(self):
        """Indirect complexity check: an edit at a leaf of a deep balanced
        tree changes cdown only along the root path."""
        tree = balanced_tree(8, 2, 10.0, 1e-15)
        inc = IncrementalElmore(tree)
        leaf = tree.leaves()[0]
        before = inc._cdown.copy()
        inc.add_capacitance(leaf, 1e-15)
        changed = np.flatnonzero(inc._cdown != before)
        assert changed.size == tree.depth_of(leaf)
