"""Tests for the incremental Elmore oracle."""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.circuit import balanced_tree, random_tree, rc_line
from repro.core import elmore_delay
from repro.core.batch import batch_elmore_delays
from repro.core.incremental import IncrementalElmore


class TestConsistencyWithBatch:
    def test_initial_state_matches(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        batch = elmore_delay(branched_tree)
        for name, expected in batch.items():
            assert inc.delay(name) == pytest.approx(expected, rel=1e-12)
        assert inc.delays() == pytest.approx(batch, rel=1e-12)

    def test_random_edit_sequence(self, corpus, rng):
        for tree in corpus[:4]:
            inc = IncrementalElmore(tree)
            shadow = tree.copy()
            names = list(tree.node_names)
            for _ in range(30):
                name = names[int(rng.integers(0, len(names)))]
                kind = rng.integers(0, 3)
                if kind == 0:
                    c = float(rng.uniform(0, 2e-12))
                    inc.set_capacitance(name, c)
                    shadow.set_capacitance(name, c)
                elif kind == 1:
                    d = float(rng.uniform(0, 1e-13))
                    inc.add_capacitance(name, d)
                    shadow.add_load(name, d)
                else:
                    r = float(rng.uniform(1.0, 5e3))
                    inc.set_resistance(name, r)
                    shadow.set_resistance(name, r)
                probe = names[int(rng.integers(0, len(names)))]
                assert inc.delay(probe) == pytest.approx(
                    elmore_delay(shadow, probe), rel=1e-10
                )

    def test_as_tree_round_trip(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        inc.set_capacitance("a1", 0.9e-12)
        inc.set_resistance("trunk", 333.0)
        rebuilt = inc.as_tree()
        assert rebuilt.node("a1").capacitance == pytest.approx(0.9e-12)
        assert rebuilt.node("trunk").resistance == pytest.approx(333.0)
        for name in branched_tree.node_names:
            assert inc.delay(name) == pytest.approx(
                elmore_delay(rebuilt, name), rel=1e-12
            )


class TestEditSemantics:
    def test_cap_edit_affects_only_shared_paths(self):
        line = rc_line(5, 100.0, 1e-12)
        inc = IncrementalElmore(line)
        before = {n: inc.delay(n) for n in line.node_names}
        inc.add_capacitance("n3", 1e-12)
        # Delay at n2 changes by R_{n3,n2} * dC = 200 * 1e-12.
        assert inc.delay("n2") - before["n2"] == pytest.approx(2e-10)
        # At n5 the shared path is up to n3: 300 ohm.
        assert inc.delay("n5") - before["n5"] == pytest.approx(3e-10)

    def test_resistance_edit_affects_downstream_only(self):
        line = rc_line(5, 100.0, 1e-12)
        inc = IncrementalElmore(line)
        before = {n: inc.delay(n) for n in line.node_names}
        inc.set_resistance("n3", 200.0)
        assert inc.delay("n2") == pytest.approx(before["n2"])
        # Downstream nodes gain dR * Cdown(n3) = 100 * 3e-12.
        assert inc.delay("n4") - before["n4"] == pytest.approx(3e-10)

    def test_original_tree_untouched(self, branched_tree):
        base = elmore_delay(branched_tree, "a2")
        inc = IncrementalElmore(branched_tree)
        inc.set_capacitance("a2", 5e-12)
        assert elmore_delay(branched_tree, "a2") == pytest.approx(base)

    def test_accessors(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        assert inc.capacitance("a1") == pytest.approx(0.1e-12)
        assert inc.resistance("trunk") == pytest.approx(200.0)
        assert inc.total_capacitance() == pytest.approx(0.75e-12)

    def test_apply_batch(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        inc.apply([
            ("C", "a1", 0.5e-12),
            ("dC", "b1", 0.1e-12),
            ("R", "trunk", 100.0),
        ])
        assert inc.capacitance("a1") == pytest.approx(0.5e-12)
        assert inc.capacitance("b1") == pytest.approx(0.15e-12)
        assert inc.resistance("trunk") == 100.0

    def test_validation(self, branched_tree):
        inc = IncrementalElmore(branched_tree)
        with pytest.raises(ValidationError):
            inc.delay("ghost")
        with pytest.raises(ValidationError):
            inc.set_capacitance("a1", -1.0)
        with pytest.raises(ValidationError):
            inc.set_resistance("a1", 0.0)
        with pytest.raises(ValidationError):
            inc.add_capacitance("a1", -1.0)
        with pytest.raises(ValidationError):
            inc.apply([("X", "a1", 1.0)])


class TestComplexity:
    def test_balanced_tree_edits_touch_log_nodes(self):
        """Indirect complexity check: an edit at a leaf of a deep balanced
        tree changes cdown only along the root path."""
        tree = balanced_tree(8, 2, 10.0, 1e-15)
        inc = IncrementalElmore(tree)
        leaf = tree.leaves()[0]
        before = inc._cdown.copy()
        inc.add_capacitance(leaf, 1e-15)
        changed = np.flatnonzero(inc._cdown != before)
        assert changed.size == tree.depth_of(leaf)


class TestRandomizedDifferential:
    """Long mixed edit/query sequences vs. fresh-from-scratch recompute.

    After every edit the incremental oracle's answers must match a fresh
    batched recompute of the materialized tree to 1e-12 relative — the
    incremental path decomposition and the level-sweep recursion are
    independent implementations of the same quantity.
    """

    def _check_all_nodes(self, inc):
        reference = batch_elmore_delays(inc.as_tree())[0]
        live = inc.delays()
        for k, name in enumerate(inc._names):
            assert live[name] == pytest.approx(reference[k], rel=1e-12), \
                f"node {name} diverged after edits"

    def test_long_mixed_sequence(self):
        tree = random_tree(40, rng=np.random.default_rng(2024))
        inc = IncrementalElmore(tree)
        rng = np.random.default_rng(7)
        names = list(tree.node_names)
        for step in range(300):
            name = names[int(rng.integers(len(names)))]
            kind = int(rng.integers(3))
            if kind == 0:
                inc.set_capacitance(name, float(rng.uniform(0.0, 2e-12)))
            elif kind == 1:
                delta = float(rng.uniform(-0.5, 2.0) * 1e-13)
                if inc.capacitance(name) + delta < 0.0:
                    delta = abs(delta)
                inc.add_capacitance(name, delta)
            else:
                inc.set_resistance(name, float(rng.uniform(1.0, 5e3)))
            # Interleave point queries with the edits (they share the
            # cdown state the edits maintain).
            probe = names[int(rng.integers(len(names)))]
            assert inc.delay(probe) == pytest.approx(
                inc.delays()[probe], rel=1e-12
            )
            if step % 25 == 24:
                self._check_all_nodes(inc)
        self._check_all_nodes(inc)

    def test_single_node_tree(self):
        tree = rc_line(1, 220.0, 3e-13)
        inc = IncrementalElmore(tree)
        assert inc.delay("n1") == pytest.approx(220.0 * 3e-13, rel=1e-12)
        inc.set_capacitance("n1", 1e-12)
        inc.set_resistance("n1", 100.0)
        assert inc.delay("n1") == pytest.approx(1e-10, rel=1e-12)
        self._check_all_nodes(inc)

    def test_input_adjacent_node_edits(self):
        """Edits at a depth-1 node (child of the input) exercise the
        parent-walk termination at parent index -1."""
        tree = rc_line(4, 100.0, 1e-12)
        inc = IncrementalElmore(tree)
        inc.add_capacitance("n1", 5e-13)   # depth-1 node
        inc.set_resistance("n1", 321.0)
        self._check_all_nodes(inc)
        # The edit reaches every downstream delay through cdown("n1").
        fresh = IncrementalElmore(inc.as_tree())
        assert inc.delay("n4") == pytest.approx(
            fresh.delay("n4"), rel=1e-12
        )
