"""Unit tests for the delay-metric zoo."""

import math

import numpy as np
import pytest

from repro._exceptions import MetricError
from repro.analysis import ExactAnalysis, measure_delay
from repro.core.metrics import (
    METRICS,
    MetricReport,
    d2m_metric,
    elmore_metric,
    evaluate_metrics,
    lognormal_metric,
    lower_bound_metric,
    scaled_elmore_metric,
    two_pole_metric,
)
from repro.core.moments import transfer_moments


class TestIndividualMetrics:
    def test_elmore_on_single_rc(self, single_rc):
        assert elmore_metric(single_rc, "out") == pytest.approx(1e-9)

    def test_scaled_elmore(self, single_rc):
        assert scaled_elmore_metric(single_rc, "out") == pytest.approx(
            math.log(2) * 1e-9
        )

    def test_single_pole_scaled_elmore_is_exact(self, single_rc):
        """For a true one-pole circuit ln2*T_D IS the 50% delay."""
        actual = measure_delay(single_rc, "out")
        assert scaled_elmore_metric(single_rc, "out") == pytest.approx(
            actual, rel=1e-9
        )

    def test_lognormal_below_elmore(self, corpus):
        """M2 >= M1^2 implies lognormal median <= Elmore."""
        for tree in corpus:
            moments = transfer_moments(tree, 2)
            for node in tree.node_names:
                assert lognormal_metric(moments, node) <= (
                    elmore_metric(moments, node) * (1 + 1e-12)
                )

    def test_d2m_is_ln2_lognormal(self, fig1):
        assert d2m_metric(fig1, "n5") == pytest.approx(
            math.log(2) * lognormal_metric(fig1, "n5")
        )

    def test_lower_bound_metric_clips(self, fig1):
        assert lower_bound_metric(fig1, "n1") == 0.0
        assert lower_bound_metric(fig1, "n5") > 0.0

    def test_two_pole_closer_than_one_pole_far_from_driver(self, fig1):
        actual = measure_delay(fig1, "n5")
        err2 = abs(two_pole_metric(fig1, "n5") - actual)
        err1 = abs(scaled_elmore_metric(fig1, "n5") - actual)
        assert err2 < err1

    def test_awe4_nearly_exact(self, fig1):
        actual = measure_delay(fig1, "n5")
        estimate = METRICS["awe4"](fig1, "n5")
        assert estimate == pytest.approx(actual, rel=1e-3)

    def test_moment_reuse(self, fig1):
        moments = transfer_moments(fig1, 4)
        assert elmore_metric(moments, "n5") == elmore_metric(fig1, "n5")

    def test_insufficient_order_rejected(self, fig1):
        moments = transfer_moments(fig1, 1)
        with pytest.raises(MetricError):
            d2m_metric(moments, "n5")


class TestBoundOrdering:
    def test_elmore_always_upper_bounds(self, corpus):
        for tree in corpus:
            analysis = ExactAnalysis(tree)
            moments = transfer_moments(tree, 2)
            for node in tree.node_names:
                actual = measure_delay(analysis, node)
                assert elmore_metric(moments, node) >= actual * (1 - 1e-9)
                assert lower_bound_metric(moments, node) <= actual * (1 + 1e-9)

    def test_ln2_elmore_not_a_bound(self, fig1):
        """The paper's Sec. II-D point: ln2*T_D is optimistic at n5 but
        pessimistic at n1 in the same tree."""
        analysis = ExactAnalysis(fig1)
        a1 = measure_delay(analysis, "n1")
        a5 = measure_delay(analysis, "n5")
        assert scaled_elmore_metric(fig1, "n1") > a1   # pessimistic
        assert scaled_elmore_metric(fig1, "n5") < a5   # optimistic


class TestEvaluateMetrics:
    def test_full_sweep(self, fig1):
        analysis = ExactAnalysis(fig1)
        refs = {
            n: measure_delay(analysis, n) for n in ("n1", "n5", "n7")
        }
        reports = evaluate_metrics(fig1, ["n1", "n5", "n7"], references=refs)
        names = {r.metric for r in reports}
        assert names == set(METRICS)
        for r in reports:
            assert r.reference is not None
            assert r.relative_error is not None

    def test_metric_subset(self, fig1):
        reports = evaluate_metrics(fig1, ["n5"], metrics=["elmore", "d2m"])
        assert {r.metric for r in reports} == {"elmore", "d2m"}

    def test_unknown_metric_rejected(self, fig1):
        with pytest.raises(MetricError):
            evaluate_metrics(fig1, ["n5"], metrics=["nope"])

    def test_report_without_reference(self):
        r = MetricReport(metric="elmore", node="x", estimate=1.0)
        assert r.relative_error is None

    def test_relative_error_sign_convention(self):
        # (reference - estimate) / reference.
        r = MetricReport(metric="m", node="x", estimate=0.8, reference=1.0)
        assert r.relative_error == pytest.approx(0.2)
