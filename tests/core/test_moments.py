"""Unit tests for the moment engine (the heart of the paper's math)."""

import math

import numpy as np
import pytest

from repro import RCTree
from repro._exceptions import AnalysisError, ValidationError
from repro.analysis.mna import mna_transfer_moments
from repro.core.moments import (
    admittance_moments,
    central_moments_from_raw,
    distribution_from_transfer,
    moments_of_impulse_train,
    transfer_from_distribution,
    transfer_moments,
)


class TestSingleRC:
    """For R into C: H(s) = 1/(1 + sRC), everything is known analytically."""

    R, C = 1000.0, 1e-12
    TAU = R * C

    @pytest.fixture
    def moments(self, single_rc):
        return transfer_moments(single_rc, 5)

    def test_transfer_coefficients(self, moments):
        # m_q = (-tau)^q.
        m = moments.at("out")
        for q in range(6):
            assert m[q] == pytest.approx((-self.TAU) ** q)

    def test_distribution_moments(self, moments):
        # M_q = q! tau^q for an exponential density.
        raw = moments.raw_moments("out")
        for q in range(6):
            assert raw[q] == pytest.approx(math.factorial(q) * self.TAU**q)

    def test_mean_variance_skewness(self, moments):
        assert moments.mean("out") == pytest.approx(self.TAU)
        assert moments.variance("out") == pytest.approx(self.TAU**2)
        assert moments.sigma("out") == pytest.approx(self.TAU)
        assert moments.third_central_moment("out") == pytest.approx(
            2 * self.TAU**3
        )
        assert moments.skewness("out") == pytest.approx(2.0)


class TestRecursionAgainstMNA:
    """The O(N) tree recursion must match dense MNA solves exactly."""

    def test_line(self, simple_line):
        tree_m = transfer_moments(simple_line, 4).coefficients
        mna_m = mna_transfer_moments(simple_line, 4)
        np.testing.assert_allclose(tree_m, mna_m, rtol=1e-12)

    def test_branched(self, branched_tree):
        tree_m = transfer_moments(branched_tree, 5).coefficients
        mna_m = mna_transfer_moments(branched_tree, 5)
        np.testing.assert_allclose(tree_m, mna_m, rtol=1e-12)

    def test_fig1(self, fig1):
        tree_m = transfer_moments(fig1, 6).coefficients
        mna_m = mna_transfer_moments(fig1, 6)
        np.testing.assert_allclose(tree_m, mna_m, rtol=1e-12)

    def test_corpus(self, corpus):
        for tree in corpus:
            a = transfer_moments(tree, 3).coefficients
            b = mna_transfer_moments(tree, 3)
            np.testing.assert_allclose(a, b, rtol=1e-9)


class TestMomentProperties:
    def test_zeroth_row_is_one(self, fig1):
        coeffs = transfer_moments(fig1, 2).coefficients
        np.testing.assert_allclose(coeffs[0], 1.0)

    def test_first_moment_is_minus_elmore(self, fig1):
        from repro.core import elmore_delays
        moments = transfer_moments(fig1, 1)
        np.testing.assert_allclose(
            moments.elmore_delays(), elmore_delays(fig1), rtol=1e-12
        )

    def test_signs_alternate(self, fig1):
        """m_q = (-1)^q |m_q| for RC trees (all distribution moments are
        positive)."""
        coeffs = transfer_moments(fig1, 5).coefficients
        for q in range(6):
            expected_sign = 1.0 if q % 2 == 0 else -1.0
            assert np.all(np.sign(coeffs[q]) == expected_sign)

    def test_variance_nonnegative_everywhere(self, corpus):
        for tree in corpus:
            moments = transfer_moments(tree, 2)
            for name in tree.node_names:
                assert moments.variance(name) >= 0.0

    def test_skewness_nonnegative_everywhere(self, corpus):
        """Lemma 2 checked via the moment algebra."""
        for tree in corpus:
            moments = transfer_moments(tree, 3)
            for name in tree.node_names:
                assert moments.third_central_moment(name) >= -1e-30
                assert moments.skewness(name) >= -1e-9

    def test_order_accessors_guarded(self, single_rc):
        moments = transfer_moments(single_rc, 1)
        with pytest.raises(AnalysisError):
            moments.variance("out")
        with pytest.raises(AnalysisError):
            moments.third_central_moment("out")

    def test_invalid_order(self, single_rc):
        with pytest.raises(ValidationError):
            transfer_moments(single_rc, 0)

    def test_as_dict(self, branched_tree):
        d = transfer_moments(branched_tree, 2).as_dict()
        assert set(d) == set(branched_tree.node_names)

    def test_node_index_or_name(self, branched_tree):
        moments = transfer_moments(branched_tree, 2)
        idx = branched_tree.index_of("a2")
        assert moments.mean("a2") == moments.mean(idx)


class TestAdmittanceMoments:
    def test_single_rc(self, single_rc):
        # Y = sC/(1+sRC): m1 = C, m2 = -RC^2, m3 = R^2 C^3.
        m = admittance_moments(single_rc, 3)
        r, c = 1000.0, 1e-12
        assert m[0] == 0.0
        assert m[1] == pytest.approx(c)
        assert m[2] == pytest.approx(-r * c**2)
        assert m[3] == pytest.approx(r**2 * c**3)

    def test_first_moment_is_total_cap(self, fig1):
        m = admittance_moments(fig1, 1)
        assert m[1] == pytest.approx(fig1.total_capacitance())

    def test_order_one_shortcut_consistent(self, fig1):
        assert admittance_moments(fig1, 1)[1] == pytest.approx(
            admittance_moments(fig1, 3)[1]
        )

    def test_sign_pattern(self, corpus):
        """m1 > 0, m2 <= 0, m3 >= 0 for RC driving points."""
        for tree in corpus:
            m = admittance_moments(tree, 3)
            assert m[1] > 0.0
            assert m[2] <= 1e-30
            assert m[3] >= -1e-45

    def test_invalid_order(self, single_rc):
        with pytest.raises(ValidationError):
            admittance_moments(single_rc, 0)

    def test_non_integer_order_rejected(self, single_rc):
        """Regression: admittance_moments must enforce the same
        integer-order contract as transfer_moments — a float order used
        to slip through and produce a malformed moment vector."""
        for bad in (2.5, 1.0, "2", True, np.float64(3.0)):
            with pytest.raises(ValidationError):
                admittance_moments(single_rc, bad)
        # numpy integers stay accepted, matching transfer_moments.
        m = admittance_moments(single_rc, np.int64(2))
        assert m.shape == (3,)


class TestConversions:
    def test_distribution_transfer_round_trip(self):
        m = np.array([1.0, -2e-9, 3e-18, -4e-27])
        raw = distribution_from_transfer(m)
        np.testing.assert_allclose(transfer_from_distribution(raw), m)

    def test_distribution_values(self):
        raw = distribution_from_transfer([1.0, -1.0, 0.5])
        np.testing.assert_allclose(raw, [1.0, 1.0, 1.0])

    def test_central_from_raw_matches_definitions(self, rng):
        # Discrete density: central moments computable directly.
        times = rng.uniform(0.0, 5.0, size=8)
        weights = rng.uniform(0.1, 1.0, size=8)
        raw = moments_of_impulse_train(times, weights, 3)
        central = central_moments_from_raw(raw)
        mean = np.average(times, weights=weights)
        mu2 = np.average((times - mean) ** 2, weights=weights)
        mu3 = np.average((times - mean) ** 3, weights=weights)
        assert central[1] == pytest.approx(0.0, abs=1e-12)
        assert central[2] == pytest.approx(mu2)
        assert central[3] == pytest.approx(mu3)

    def test_central_moments_eq27(self, fig1):
        """Verify eq. (27) explicitly: mu2 = 2 m2 - m1^2,
        mu3 = -6 m3 + 6 m1 m2 - 2 m1^3."""
        moments = transfer_moments(fig1, 3)
        for node in fig1.node_names:
            m = moments.at(node)
            assert moments.variance(node) == pytest.approx(
                2 * m[2] - m[1] ** 2
            )
            assert moments.third_central_moment(node) == pytest.approx(
                -6 * m[3] + 6 * m[1] * m[2] - 2 * m[1] ** 3
            )

    def test_central_from_raw_guards(self):
        with pytest.raises(AnalysisError):
            central_moments_from_raw([0.0, 1.0])

    def test_impulse_train_shape_guard(self):
        with pytest.raises(ValidationError):
            moments_of_impulse_train(np.ones(3), np.ones(4), 2)

    def test_impulse_train_empty_input_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            moments_of_impulse_train(np.array([]), np.array([]), 2)

    def test_impulse_train_order_validated(self):
        with pytest.raises(ValidationError, match="order"):
            moments_of_impulse_train(np.ones(2), np.ones(2), -1)
        with pytest.raises(ValidationError, match="order"):
            moments_of_impulse_train(np.ones(2), np.ones(2), 1.5)

    def test_transfer_moments_order_validated(self, simple_line):
        with pytest.raises(ValidationError, match="order"):
            transfer_moments(simple_line, 0)
        with pytest.raises(ValidationError, match="order"):
            transfer_moments(simple_line, -3)
        with pytest.raises(ValidationError, match="integer"):
            transfer_moments(simple_line, 2.5)


class TestCentralMomentAdditivity:
    """Appendix B: central moments add under convolution.

    Convolution of transfer functions = series connection of stages; the
    tree recursion realizes it, so check mu2/mu3 at a node equals the sum
    over the chain of per-stage contributions for a cascade of isolated
    RC stages (where stages don't load each other only if separated by
    ideal buffers — instead we verify additivity directly on densities).
    """

    def test_convolution_of_discrete_densities(self, rng):
        # Two discrete densities, convolved; central moments must add.
        t1 = rng.uniform(0, 1, 5)
        w1 = rng.uniform(0.1, 1, 5)
        w1 = w1 / w1.sum()
        t2 = rng.uniform(0, 2, 4)
        w2 = rng.uniform(0.1, 1, 4)
        w2 = w2 / w2.sum()
        # Convolution of impulse trains: all pairwise sums.
        tc = (t1[:, None] + t2[None, :]).ravel()
        wc = (w1[:, None] * w2[None, :]).ravel()
        raw1 = moments_of_impulse_train(t1, w1, 3)
        raw2 = moments_of_impulse_train(t2, w2, 3)
        rawc = moments_of_impulse_train(tc, wc, 3)
        c1 = central_moments_from_raw(raw1)
        c2 = central_moments_from_raw(raw2)
        cc = central_moments_from_raw(rawc)
        assert cc[2] == pytest.approx(c1[2] + c2[2])
        assert cc[3] == pytest.approx(c1[3] + c2[3])
