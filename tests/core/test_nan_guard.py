"""Non-finite inputs must be rejected at the gate, not propagated.

A NaN sigma slides through every ``< 0`` comparison and then poisons an
entire (B, N) Monte-Carlo batch — the sweep returns NaN bounds with no
error anywhere.  These tests pin the explicit finiteness guards on the
batched hot path: the variation model, the batched parameter
validation, and (in ``tests/serve``) the HTTP rows.
"""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.circuit.rctree import RCTree
from repro.core.batch import batch_elmore_delays, compile_topology
from repro.core.variation import VariationModel

NAN = float("nan")
INF = float("inf")


def chain_topology(n=4):
    tree = RCTree("n0")
    for i in range(1, n):
        tree.add_node(f"n{i}", f"n{i - 1}", 1.0, 1.0)
    return compile_topology(tree)


class TestVariationModelGuards:
    @pytest.mark.parametrize("kwargs", [
        {"resistance_sigma": NAN},
        {"resistance_sigma": INF},
        {"capacitance_sigma": NAN},
        {"capacitance_sigma": -INF},
    ])
    def test_nonfinite_global_sigma_rejected(self, kwargs):
        with pytest.raises(ValidationError, match="finite"):
            VariationModel(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"resistance_sigmas": {"n1": NAN}},
        {"capacitance_sigmas": {"n2": INF}},
    ])
    def test_nonfinite_per_name_sigma_rejected(self, kwargs):
        with pytest.raises(ValidationError, match="finite"):
            VariationModel(**kwargs)

    def test_negative_sigma_still_rejected(self):
        with pytest.raises(ValidationError, match=">= 0"):
            VariationModel(resistance_sigma=-0.1)
        with pytest.raises(ValidationError, match=">= 0"):
            VariationModel(capacitance_sigmas={"n1": -0.1})

    def test_valid_models_still_construct(self):
        VariationModel()
        VariationModel(0.1, 0.2, resistance_sigmas={"n1": 0.3})


class TestBatchedParameterGuards:
    @pytest.mark.parametrize("bad", [NAN, INF, 0.0, -1.0])
    def test_bad_resistance_entry_rejected(self, bad):
        topology = chain_topology()
        r = np.ones((2, topology.num_nodes))
        r[1, 2] = bad
        with pytest.raises(ValidationError,
                           match="resistances must be finite"):
            topology.broadcast_parameters(resistances=r)

    @pytest.mark.parametrize("bad", [NAN, -INF, -0.5])
    def test_bad_capacitance_entry_rejected(self, bad):
        topology = chain_topology()
        c = np.ones((2, topology.num_nodes))
        c[0, 1] = bad
        with pytest.raises(ValidationError,
                           match="capacitances must be finite"):
            topology.broadcast_parameters(capacitances=c)

    def test_batch_elmore_rejects_nan_rows_end_to_end(self):
        topology = chain_topology()
        r = np.ones((3, topology.num_nodes))
        r[2, 0] = NAN
        with pytest.raises(ValidationError):
            batch_elmore_delays(topology, r, None)

    def test_finite_batch_returns_finite_delays(self):
        topology = chain_topology()
        out = batch_elmore_delays(
            topology,
            np.ones((2, topology.num_nodes)),
            np.ones((2, topology.num_nodes)),
        )
        assert np.isfinite(out).all()
