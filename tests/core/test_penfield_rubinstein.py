"""Unit tests for the Penfield-Rubinstein waveform bounds."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError
from repro.analysis import ExactAnalysis, measure_delay, threshold_crossing
from repro.core.penfield_rubinstein import (
    PRHBounds,
    prh_bounds,
    prh_delay_interval,
)


class TestRegionStructure:
    @pytest.fixture
    def bounds(self):
        # Generic constants with T_R < T_D < T_P.
        return PRHBounds(node="x", t_p=4.0, t_d=2.0, t_r=1.0)

    def test_tmin_zero_region(self, bounds):
        # v <= 1 - T_D/T_P = 0.5 gives t_min = 0.
        assert bounds.t_min(0.0) == 0.0
        assert bounds.t_min(0.5) == 0.0

    def test_tmin_linear_region(self, bounds):
        # Between 0.5 and 1 - T_R/T_P = 0.75: T_D - T_P (1 - v).
        assert bounds.t_min(0.6) == pytest.approx(2.0 - 4.0 * 0.4)

    def test_tmin_log_region(self, bounds):
        v = 0.9
        expected = 2.0 - 1.0 + 1.0 * np.log(1.0 / (4.0 * 0.1))
        assert bounds.t_min(v) == pytest.approx(expected)

    def test_tmax_rational_region(self, bounds):
        assert bounds.t_max(0.25) == pytest.approx(2.0 / 0.75 - 1.0)

    def test_tmax_log_region(self, bounds):
        v = 0.9
        expected = 4.0 - 1.0 + 4.0 * np.log(2.0 / (4.0 * 0.1))
        assert bounds.t_max(v) == pytest.approx(expected)

    def test_continuity_at_region_boundaries(self, bounds):
        for boundary in (0.5, 0.75):  # 1 - T_D/T_P and 1 - T_R/T_P
            lo = bounds.t_min(boundary - 1e-12)
            hi = bounds.t_min(boundary + 1e-12)
            assert lo == pytest.approx(hi, abs=1e-9)
            lo = bounds.t_max(boundary - 1e-12)
            hi = bounds.t_max(boundary + 1e-12)
            assert lo == pytest.approx(hi, abs=1e-9)

    def test_monotone_in_v(self, bounds):
        vs = np.linspace(0.0, 0.999, 500)
        tmins = [bounds.t_min(v) for v in vs]
        tmaxs = [bounds.t_max(v) for v in vs]
        assert all(a <= b + 1e-15 for a, b in zip(tmins, tmins[1:]))
        assert all(a <= b + 1e-15 for a, b in zip(tmaxs, tmaxs[1:]))

    def test_tmin_below_tmax(self, bounds):
        for v in np.linspace(0.0, 0.999, 200):
            assert bounds.t_min(v) <= bounds.t_max(v) + 1e-15

    def test_fraction_validation(self, bounds):
        with pytest.raises(AnalysisError):
            bounds.t_min(1.0)
        with pytest.raises(AnalysisError):
            bounds.t_max(-0.1)

    def test_inconsistent_constants_rejected(self):
        with pytest.raises(AnalysisError):
            PRHBounds(node="x", t_p=1.0, t_d=2.0, t_r=0.5)  # T_D > T_P
        with pytest.raises(AnalysisError):
            PRHBounds(node="x", t_p=4.0, t_d=1.0, t_r=2.0)  # T_R > T_D
        with pytest.raises(AnalysisError):
            PRHBounds(node="x", t_p=0.0, t_d=0.0, t_r=0.0)


class TestAgainstExactResponses:
    def test_bounds_contain_crossings_everywhere(self, corpus):
        """Every percentage crossing of every node's exact step response
        lies inside [t_min, t_max]."""
        fractions = (0.1, 0.3, 0.5, 0.7, 0.9)
        for tree in corpus[:5]:
            analysis = ExactAnalysis(tree)
            all_bounds = prh_bounds(tree)
            for name in tree.node_names:
                transfer = analysis.transfer(name)
                b = all_bounds[name]
                for v in fractions:
                    t = threshold_crossing(transfer, threshold=v)
                    assert b.t_min(v) <= t * (1 + 1e-9) + 1e-30
                    assert t <= b.t_max(v) * (1 + 1e-9) + 1e-30

    def test_voltage_bounds_bracket_waveform(self, fig1):
        analysis = ExactAnalysis(fig1)
        b = prh_bounds(fig1, "n5")
        transfer = analysis.transfer("n5")
        for t in np.linspace(1e-12, 6e-9, 40):
            v = float(transfer.step_response(np.asarray(t)))
            assert b.voltage_lower(t) <= v + 1e-9
            assert v <= b.voltage_upper(t) + 1e-9

    def test_voltage_bounds_edge_cases(self, fig1):
        b = prh_bounds(fig1, "n5")
        assert b.voltage_lower(-1.0) == 0.0
        assert b.voltage_upper(-1.0) == 0.0
        assert b.voltage_upper(1.0) == pytest.approx(1.0)  # far future
        assert b.voltage_lower(1.0) == pytest.approx(1.0, abs=1e-6)

    def test_voltage_bound_inverse_consistency(self, fig1):
        b = prh_bounds(fig1, "n5")
        for v in (0.2, 0.5, 0.8):
            assert b.voltage_lower(b.t_max(v)) == pytest.approx(v, rel=1e-6)
            assert b.voltage_upper(b.t_min(v)) == pytest.approx(v, rel=1e-6)


class TestTable1Columns:
    def test_fig1_prh_intervals(self, fig1):
        """Columns (6) and (7) of Table I."""
        tmin, tmax = prh_delay_interval(fig1, "n1")
        assert tmin == 0.0
        assert tmax == pytest.approx(0.55e-9, rel=1e-2)
        tmin, tmax = prh_delay_interval(fig1, "n5")
        assert tmin == pytest.approx(0.51e-9, rel=3e-2)
        assert tmax == pytest.approx(1.32e-9, rel=1e-2)
        tmin, tmax = prh_delay_interval(fig1, "n7")
        assert tmin == pytest.approx(0.054e-9, rel=5e-2)
        assert tmax == pytest.approx(1.02e-9, rel=1e-2)

    def test_tmax_equals_elmore_at_driving_point(self, fig1):
        """The paper's observation: t_max = T_D at the driving point."""
        from repro.core import elmore_delay
        _, tmax = prh_delay_interval(fig1, "n1")
        assert tmax == pytest.approx(elmore_delay(fig1, "n1"), rel=1e-12)

    def test_interval_contains_actual(self, fig1):
        analysis = ExactAnalysis(fig1)
        for node in ("n1", "n5", "n7"):
            tmin, tmax = prh_delay_interval(fig1, node)
            actual = measure_delay(analysis, node)
            assert tmin <= actual <= tmax
