"""Unit tests for Elmore-delay sensitivities."""

import numpy as np
import pytest

from repro.circuit import RCTree, rc_line
from repro.core import elmore_delay
from repro.core.sensitivity import elmore_sensitivity, total_elmore_gradient


def finite_difference_r(tree, node, edge_child, h=1e-6):
    base = elmore_delay(tree, node)
    bumped = tree.copy()
    r0 = bumped.node(edge_child).resistance
    bumped.set_resistance(edge_child, r0 * (1 + h))
    return (elmore_delay(bumped, node) - base) / (r0 * h)


def finite_difference_c(tree, node, at_node, h=1e-18):
    base = elmore_delay(tree, node)
    bumped = tree.copy()
    bumped.add_load(at_node, h)
    return (elmore_delay(bumped, node) - base) / h


class TestAgainstFiniteDifferences:
    def test_line(self, simple_line):
        sens = elmore_sensitivity(simple_line, "n3")
        for child in simple_line.node_names:
            assert sens.resistance_sensitivity(child) == pytest.approx(
                finite_difference_r(simple_line, "n3", child), rel=1e-6
            )
            assert sens.capacitance_sensitivity(child) == pytest.approx(
                finite_difference_c(simple_line, "n3", child), rel=1e-6
            )

    def test_branched(self, branched_tree):
        for target in branched_tree.node_names:
            sens = elmore_sensitivity(branched_tree, target)
            for child in branched_tree.node_names:
                assert sens.resistance_sensitivity(child) == pytest.approx(
                    finite_difference_r(branched_tree, target, child),
                    rel=1e-6, abs=1e-20,
                )
                assert sens.capacitance_sensitivity(child) == pytest.approx(
                    finite_difference_c(branched_tree, target, child),
                    rel=1e-6, abs=1e-9,
                )

    def test_corpus(self, corpus):
        for tree in corpus[:4]:
            target = tree.leaves()[0]
            sens = elmore_sensitivity(tree, target)
            for child in tree.node_names:
                assert sens.resistance_sensitivity(child) == pytest.approx(
                    finite_difference_r(tree, target, child),
                    rel=1e-5, abs=1e-22,
                )


class TestStructure:
    def test_dr_zero_off_path(self, branched_tree):
        sens = elmore_sensitivity(branched_tree, "a2")
        # b1 is off a2's root path.
        assert sens.resistance_sensitivity("b1") == 0.0
        assert sens.resistance_sensitivity("a1") > 0.0

    def test_dc_is_shared_path_resistance(self, branched_tree):
        sens = elmore_sensitivity(branched_tree, "a2")
        for k in branched_tree.node_names:
            assert sens.capacitance_sensitivity(k) == pytest.approx(
                branched_tree.shared_path_resistance(k, "a2")
            )

    def test_dr_equals_downstream_cap_on_path(self, simple_line):
        from repro.core import downstream_capacitance
        sens = elmore_sensitivity(simple_line, "n5")
        cdown = downstream_capacitance(simple_line)
        np.testing.assert_allclose(sens.dR, cdown)

    def test_predict_delta_exact_for_r_only(self, branched_tree):
        sens = elmore_sensitivity(branched_tree, "a2")
        bumped = branched_tree.copy()
        bumped.set_resistance("trunk", 250.0)
        predicted = sens.predict_delta(
            resistance_deltas={"trunk": 50.0}
        )
        actual = elmore_delay(bumped, "a2") - elmore_delay(
            branched_tree, "a2"
        )
        assert predicted == pytest.approx(actual, rel=1e-12)

    def test_predict_delta_exact_for_c_only(self, branched_tree):
        sens = elmore_sensitivity(branched_tree, "a2")
        bumped = branched_tree.copy()
        bumped.add_load("b1", 0.3e-12)
        predicted = sens.predict_delta(
            capacitance_deltas={"b1": 0.3e-12}
        )
        actual = elmore_delay(bumped, "a2") - elmore_delay(
            branched_tree, "a2"
        )
        assert predicted == pytest.approx(actual, rel=1e-12)


class TestWeightedGradient:
    def test_linearity_over_sinks(self, branched_tree):
        g_a = elmore_sensitivity(branched_tree, "a2")
        g_b = elmore_sensitivity(branched_tree, "b1")
        combined = total_elmore_gradient(
            branched_tree, {"a2": 2.0, "b1": 0.5}
        )
        np.testing.assert_allclose(
            combined["dR"], 2.0 * g_a.dR + 0.5 * g_b.dR
        )
        np.testing.assert_allclose(
            combined["dC"], 2.0 * g_a.dC + 0.5 * g_b.dC
        )
