"""Unit tests for the sampled-waveform statistics utilities."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError
from repro.core.statistics import (
    WaveformStats,
    is_unimodal,
    numeric_median,
    numeric_mode,
    numeric_raw_moments,
    waveform_stats,
)


@pytest.fixture
def gaussian_grid():
    t = np.linspace(-6.0, 6.0, 4001)
    return t, np.exp(-0.5 * t**2) / np.sqrt(2 * np.pi)


class TestIsUnimodal:
    def test_monotone_rising(self):
        assert is_unimodal(np.linspace(0, 1, 50))

    def test_monotone_falling(self):
        assert is_unimodal(np.linspace(1, 0, 50))

    def test_single_peak(self):
        t = np.linspace(0, 1, 100)
        assert is_unimodal(np.sin(np.pi * t))

    def test_two_peaks_rejected(self):
        t = np.linspace(0, 1, 400)
        values = np.exp(-((t - 0.25) ** 2) / 0.002) + np.exp(
            -((t - 0.75) ** 2) / 0.002
        )
        assert not is_unimodal(values)

    def test_noise_tolerance(self):
        t = np.linspace(0, 1, 100)
        values = np.sin(np.pi * t)
        noisy = values + 1e-12 * np.sin(80 * np.pi * t)
        assert is_unimodal(noisy, rel_tol=1e-9)

    def test_zero_density_rejected(self):
        assert not is_unimodal(np.zeros(10))

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            is_unimodal(np.array([1.0]))


class TestNumericMoments:
    def test_gaussian_moments(self, gaussian_grid):
        t, f = gaussian_grid
        raw = numeric_raw_moments(t, f, 2)
        assert raw[0] == pytest.approx(1.0, abs=1e-8)
        assert raw[1] == pytest.approx(0.0, abs=1e-8)
        assert raw[2] == pytest.approx(1.0, abs=1e-6)

    def test_exponential_median(self):
        t = np.linspace(0.0, 40.0, 200001)
        f = np.exp(-t)
        assert numeric_median(t, f) == pytest.approx(np.log(2), rel=1e-5)

    def test_median_symmetric(self, gaussian_grid):
        t, f = gaussian_grid
        assert numeric_median(t, f) == pytest.approx(0.0, abs=1e-6)

    def test_mode_parabolic_refinement(self):
        t = np.linspace(0.0, 2.0, 101)
        # Peak truly at 0.97, between grid points.
        f = np.exp(-((t - 0.97) ** 2) / 0.1)
        assert numeric_mode(t, f) == pytest.approx(0.97, abs=1e-3)

    def test_mode_at_left_edge(self):
        t = np.linspace(0.0, 5.0, 100)
        f = np.exp(-t)
        assert numeric_mode(t, f) == 0.0

    def test_median_guards(self):
        with pytest.raises(AnalysisError):
            numeric_median(np.array([0.0, 1.0]), np.array([0.0, 0.0]))
        with pytest.raises(AnalysisError):
            numeric_median(np.arange(3.0), np.arange(4.0))


class TestNonuniformMode:
    """Regressions for the nonuniform-grid parabola vertex (the old code
    assumed a uniform grid via ``h = 0.5*(t2 - t0)``)."""

    def test_parabola_vertex_exact_on_skewed_grid(self):
        # A parabola sampled on a deliberately nonuniform grid: the
        # three-point fit is exact, so the refined mode must recover the
        # true vertex.  The uniform-grid formula lands at ~0.33 here.
        t = np.array([0.0, 0.30, 0.45, 1.0])
        v = 1.0 - (t - 0.52) ** 2
        assert numeric_mode(t, v) == pytest.approx(0.52, abs=1e-12)

    def test_skewed_grid_pinned_to_dense_uniform_reference(self):
        # verify_tree-style two-scale grid (union of a coarse linear and
        # a geometric grid) for h(t) = t e^{-t}, true mode = 1.  The
        # dense-uniform reference is the ground truth; the uniform-grid
        # formula is ~8e-3 off on this grid, the nonuniform vertex ~1e-3.
        base = np.linspace(0.0, 12.0, 60)
        extra = np.geomspace(0.05, 12.0, 40)
        t = np.unique(np.concatenate((base, extra)))
        dense = np.linspace(0.0, 12.0, 200001)
        ref = numeric_mode(dense, dense * np.exp(-dense))
        assert numeric_mode(t, t * np.exp(-t)) == pytest.approx(ref, abs=2e-3)

    def test_uniform_grid_unchanged(self):
        # On uniform grids the general vertex reduces to the classic
        # refinement bit for bit.
        t = np.linspace(0.0, 2.0, 101)
        f = np.exp(-((t - 0.97) ** 2) / 0.1)
        k = int(np.argmax(f))
        v0, v1, v2 = f[k - 1 : k + 2]
        h = 0.5 * (t[k + 1] - t[k - 1])
        legacy = t[k] + 0.5 * (v0 - v2) / (v0 - 2.0 * v1 + v2) * h
        assert numeric_mode(t, f) == pytest.approx(legacy, abs=1e-15)

    def test_vertex_clipped_into_bracket(self):
        # Whatever roundoff does, the refined mode stays inside the
        # three-sample bracket.
        t = np.array([0.0, 1.0, 1.5, 4.0])
        v = np.array([0.1, 1.0, 0.999999, 0.1])
        assert t[0] <= numeric_mode(t, v) <= t[2]


class TestUndershootClamp:
    """Regressions for negative-undershoot handling in the CDF path."""

    def test_small_undershoot_clamped_to_density_median(self):
        # A tiny negative dip right before the median bracket used to
        # leak into the segment inversion (negative v0 in the quadratic
        # solve) and shift the median by ~1e-4; clamped, the median is
        # exactly 2.0 by construction.
        t = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        v = np.array([0.5, 0.5, -1e-8, 0.5, 0.5])
        assert numeric_median(t, v) == pytest.approx(2.0, abs=1e-9)

    def test_small_undershoot_matches_explicit_clamp(self):
        t = np.linspace(0.0, 40.0, 20001)
        f = np.exp(-t)
        f[:2] = -1e-9
        clamped = np.maximum(f, 0.0)
        assert numeric_median(t, f) == numeric_median(t, clamped)
        stats = waveform_stats(t, f)
        ref = waveform_stats(t, clamped)
        assert stats.mean == ref.mean
        assert stats.median == ref.median
        assert stats.mu2 == ref.mu2

    def test_deep_undershoot_rejected(self):
        # ~1% negative mass: not usably a density -> AnalysisError from
        # both rungs instead of a silently wrong searchsorted bracket.
        t = np.linspace(0.0, 10.0, 2001)
        f = np.exp(-t)
        mask = (t > 0.65) & (t < 0.75)
        f[mask] -= 1.2 * np.exp(-0.7)
        with pytest.raises(AnalysisError, match="undershoot"):
            numeric_median(t, f)
        with pytest.raises(AnalysisError, match="undershoot"):
            waveform_stats(t, f)

    def test_all_negative_rejected(self):
        t = np.linspace(0.0, 1.0, 11)
        with pytest.raises(AnalysisError):
            numeric_median(t, -np.ones(11))


class TestDegenerateMu2:
    """sigma and skewness must derive from one clamped mu2."""

    def test_roundoff_mu2_pair_consistency(self):
        # Pre-fix: sigma clamps (1e-15) while skewness divides by the
        # raw roundoff-scale mu2 and explodes to ~1e23.
        stats = WaveformStats(
            mass=1.0, mean=1.0, median=1.0, mode=1.0,
            mu2=1e-30, mu3=1e-22, unimodal=True,
        )
        assert stats.mu2_clamped == 0.0
        assert stats.sigma == 0.0
        assert stats.skewness == 0.0

    def test_negative_roundoff_mu2(self):
        stats = WaveformStats(
            mass=1.0, mean=5.0, median=5.0, mode=5.0,
            mu2=-1e-18, mu3=-1e-16, unimodal=True,
        )
        assert stats.sigma == 0.0
        assert stats.skewness == 0.0

    def test_genuine_mu2_not_clamped(self):
        stats = WaveformStats(
            mass=1.0, mean=1.0, median=0.7, mode=0.0,
            mu2=1.0, mu3=2.0, unimodal=True,
        )
        assert stats.sigma == 1.0
        assert stats.skewness == pytest.approx(2.0)

    def test_near_degenerate_density(self):
        # A delta-like density: whatever side of zero cancellation lands
        # on, sigma and skewness agree about degeneracy.
        t = np.array([0.0, 5.0 - 1e-9, 5.0, 5.0 + 1e-9, 10.0])
        v = np.array([0.0, 0.0, 1e9, 0.0, 0.0])
        stats = waveform_stats(t, v)
        assert stats.mean == pytest.approx(5.0, rel=1e-12)
        assert (stats.sigma == 0.0) == (stats.skewness == 0.0)
        assert abs(stats.skewness) < 10.0
        assert stats.ordering_holds


class TestWaveformStats:
    def test_gaussian_all_coincide(self, gaussian_grid):
        t, f = gaussian_grid
        stats = waveform_stats(t, f)
        assert stats.mean == pytest.approx(0.0, abs=1e-6)
        assert stats.median == pytest.approx(0.0, abs=1e-6)
        assert stats.mode == pytest.approx(0.0, abs=1e-3)
        assert stats.mu2 == pytest.approx(1.0, rel=1e-4)
        assert abs(stats.skewness) < 1e-4
        assert stats.unimodal
        assert stats.ordering_holds

    def test_exponential_ordering(self):
        t = np.linspace(0.0, 40.0, 100001)
        f = np.exp(-t)
        stats = waveform_stats(t, f)
        # mode (0) <= median (ln 2) <= mean (1).
        assert stats.mode <= stats.median <= stats.mean
        assert stats.mean == pytest.approx(1.0, rel=1e-4)
        assert stats.median == pytest.approx(np.log(2), rel=1e-4)
        assert stats.skewness == pytest.approx(2.0, rel=1e-3)
        assert stats.ordering_holds

    def test_unnormalized_density_accepted(self):
        t = np.linspace(0.0, 40.0, 50001)
        f = 7.5 * np.exp(-t)
        stats = waveform_stats(t, f)
        assert stats.mass == pytest.approx(7.5, rel=1e-4)
        assert stats.mean == pytest.approx(1.0, rel=1e-3)

    def test_sigma_property(self):
        t = np.linspace(0.0, 40.0, 50001)
        stats = waveform_stats(t, np.exp(-t))
        assert stats.sigma == pytest.approx(np.sqrt(stats.mu2))

    def test_empty_mass_rejected(self):
        with pytest.raises(AnalysisError):
            waveform_stats(np.linspace(0, 1, 10), np.zeros(10))

    def test_impulse_response_ordering(self, fig1):
        """Sampled h(t) at the heavily skewed driving point obeys the
        Theorem's ordering."""
        from repro.analysis import ExactAnalysis
        analysis = ExactAnalysis(fig1)
        transfer = analysis.transfer("n1")
        t = np.linspace(0.0, transfer.settle_time(1e-10), 20001)
        stats = waveform_stats(t, transfer.impulse_response(t))
        assert stats.unimodal
        assert stats.ordering_holds
        assert stats.mode < stats.median < stats.mean
