"""Unit tests for the sampled-waveform statistics utilities."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError
from repro.core.statistics import (
    is_unimodal,
    numeric_median,
    numeric_mode,
    numeric_raw_moments,
    waveform_stats,
)


@pytest.fixture
def gaussian_grid():
    t = np.linspace(-6.0, 6.0, 4001)
    return t, np.exp(-0.5 * t**2) / np.sqrt(2 * np.pi)


class TestIsUnimodal:
    def test_monotone_rising(self):
        assert is_unimodal(np.linspace(0, 1, 50))

    def test_monotone_falling(self):
        assert is_unimodal(np.linspace(1, 0, 50))

    def test_single_peak(self):
        t = np.linspace(0, 1, 100)
        assert is_unimodal(np.sin(np.pi * t))

    def test_two_peaks_rejected(self):
        t = np.linspace(0, 1, 400)
        values = np.exp(-((t - 0.25) ** 2) / 0.002) + np.exp(
            -((t - 0.75) ** 2) / 0.002
        )
        assert not is_unimodal(values)

    def test_noise_tolerance(self):
        t = np.linspace(0, 1, 100)
        values = np.sin(np.pi * t)
        noisy = values + 1e-12 * np.sin(80 * np.pi * t)
        assert is_unimodal(noisy, rel_tol=1e-9)

    def test_zero_density_rejected(self):
        assert not is_unimodal(np.zeros(10))

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            is_unimodal(np.array([1.0]))


class TestNumericMoments:
    def test_gaussian_moments(self, gaussian_grid):
        t, f = gaussian_grid
        raw = numeric_raw_moments(t, f, 2)
        assert raw[0] == pytest.approx(1.0, abs=1e-8)
        assert raw[1] == pytest.approx(0.0, abs=1e-8)
        assert raw[2] == pytest.approx(1.0, abs=1e-6)

    def test_exponential_median(self):
        t = np.linspace(0.0, 40.0, 200001)
        f = np.exp(-t)
        assert numeric_median(t, f) == pytest.approx(np.log(2), rel=1e-5)

    def test_median_symmetric(self, gaussian_grid):
        t, f = gaussian_grid
        assert numeric_median(t, f) == pytest.approx(0.0, abs=1e-6)

    def test_mode_parabolic_refinement(self):
        t = np.linspace(0.0, 2.0, 101)
        # Peak truly at 0.97, between grid points.
        f = np.exp(-((t - 0.97) ** 2) / 0.1)
        assert numeric_mode(t, f) == pytest.approx(0.97, abs=1e-3)

    def test_mode_at_left_edge(self):
        t = np.linspace(0.0, 5.0, 100)
        f = np.exp(-t)
        assert numeric_mode(t, f) == 0.0

    def test_median_guards(self):
        with pytest.raises(AnalysisError):
            numeric_median(np.array([0.0, 1.0]), np.array([0.0, 0.0]))
        with pytest.raises(AnalysisError):
            numeric_median(np.arange(3.0), np.arange(4.0))


class TestWaveformStats:
    def test_gaussian_all_coincide(self, gaussian_grid):
        t, f = gaussian_grid
        stats = waveform_stats(t, f)
        assert stats.mean == pytest.approx(0.0, abs=1e-6)
        assert stats.median == pytest.approx(0.0, abs=1e-6)
        assert stats.mode == pytest.approx(0.0, abs=1e-3)
        assert stats.mu2 == pytest.approx(1.0, rel=1e-4)
        assert abs(stats.skewness) < 1e-4
        assert stats.unimodal
        assert stats.ordering_holds

    def test_exponential_ordering(self):
        t = np.linspace(0.0, 40.0, 100001)
        f = np.exp(-t)
        stats = waveform_stats(t, f)
        # mode (0) <= median (ln 2) <= mean (1).
        assert stats.mode <= stats.median <= stats.mean
        assert stats.mean == pytest.approx(1.0, rel=1e-4)
        assert stats.median == pytest.approx(np.log(2), rel=1e-4)
        assert stats.skewness == pytest.approx(2.0, rel=1e-3)
        assert stats.ordering_holds

    def test_unnormalized_density_accepted(self):
        t = np.linspace(0.0, 40.0, 50001)
        f = 7.5 * np.exp(-t)
        stats = waveform_stats(t, f)
        assert stats.mass == pytest.approx(7.5, rel=1e-4)
        assert stats.mean == pytest.approx(1.0, rel=1e-3)

    def test_sigma_property(self):
        t = np.linspace(0.0, 40.0, 50001)
        stats = waveform_stats(t, np.exp(-t))
        assert stats.sigma == pytest.approx(np.sqrt(stats.mu2))

    def test_empty_mass_rejected(self):
        with pytest.raises(AnalysisError):
            waveform_stats(np.linspace(0, 1, 10), np.zeros(10))

    def test_impulse_response_ordering(self, fig1):
        """Sampled h(t) at the heavily skewed driving point obeys the
        Theorem's ordering."""
        from repro.analysis import ExactAnalysis
        analysis = ExactAnalysis(fig1)
        transfer = analysis.transfer("n1")
        t = np.linspace(0.0, transfer.settle_time(1e-10), 20001)
        stats = waveform_stats(t, transfer.impulse_response(t))
        assert stats.unimodal
        assert stats.ordering_holds
        assert stats.mode < stats.median < stats.mean
