"""Tier-1 theorem sweep: the paper's claims on a seeded random corpus.

``benchmarks/bench_theorem_corpus.py`` sweeps 200 trees; this is the
always-on version — a small seeded :func:`random_tree_corpus` batch run
through :func:`repro.core.verify_tree`, asserting at **every node** of
every tree:

* Lemma 1 — the impulse response is nonnegative and unimodal;
* Lemma 2 — the coefficient of skewness is nonnegative;
* Theorem — Mode <= Median <= Mean of ``h(t)``;
* Corollary 1 — ``max(T_D - sigma, 0) <= t_50 <= T_D``.
"""

import pytest

from repro.core import verify_tree
from repro.workloads import random_tree_corpus

CORPUS = random_tree_corpus(6, size_range=(3, 14), seed=1995)


@pytest.mark.parametrize("index", range(len(CORPUS)))
def test_all_claims_hold(index):
    tree = CORPUS[index]
    verdict = verify_tree(tree, samples=2001)
    failures = verdict.failures()
    assert not failures, (
        f"tree {index} ({tree.num_nodes} nodes) violates the paper at "
        f"nodes {[v.node for v in failures]}"
    )
    # Spot-check the verdict invariants the benchmark relies on.
    for node in verdict.nodes:
        assert node.lower_bound <= node.elmore
        assert node.actual_delay <= node.elmore * (1 + 1e-9)


def test_ordering_fields_consistent():
    """The verdict's ordering flag really is Mode <= Median <= Mean."""
    verdict = verify_tree(CORPUS[0], samples=2001)
    for node in verdict.nodes:
        stats = node.stats
        assert stats.mode <= stats.median * (1 + 1e-6) + 1e-18
        assert stats.median <= stats.mean * (1 + 1e-6) + 1e-18
