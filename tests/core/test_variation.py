"""Tests for statistical Elmore analysis under process variation."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError, ValidationError
from repro.circuit import rc_line
from repro.core import elmore_delay
from repro.core.variation import (
    DelayStatistics,
    VariationModel,
    elmore_statistics,
    monte_carlo_elmore,
)


class TestClosedForms:
    def test_zero_variation_zero_std(self, branched_tree):
        stats = elmore_statistics(branched_tree, "a2", VariationModel())
        assert stats.std == 0.0
        assert stats.mean == pytest.approx(
            elmore_delay(branched_tree, "a2")
        )

    def test_mean_is_nominal(self, branched_tree):
        model = VariationModel(resistance_sigma=0.15,
                               capacitance_sigma=0.10)
        stats = elmore_statistics(branched_tree, "a2", model)
        assert stats.mean == pytest.approx(
            elmore_delay(branched_tree, "a2")
        )

    def test_std_scales_linearly_for_single_source(self, branched_tree):
        """With only R varying (no cross term), std is linear in sigma."""
        s1 = elmore_statistics(
            branched_tree, "a2", VariationModel(resistance_sigma=0.05)
        )
        s2 = elmore_statistics(
            branched_tree, "a2", VariationModel(resistance_sigma=0.10)
        )
        assert s2.std == pytest.approx(2.0 * s1.std, rel=1e-12)
        assert s1.std == pytest.approx(s1.std_first_order)

    def test_cross_term_increases_std(self, branched_tree):
        model = VariationModel(resistance_sigma=0.2,
                               capacitance_sigma=0.2)
        stats = elmore_statistics(branched_tree, "a2", model)
        assert stats.std > stats.std_first_order

    def test_single_rc_hand_computed(self, single_rc):
        """One R, one C: T_D = RC(1+x)(1+y);
        Var = (RC)^2 (sr^2 + sc^2 + sr^2 sc^2)."""
        sr, sc = 0.1, 0.2
        model = VariationModel(resistance_sigma=sr, capacitance_sigma=sc)
        stats = elmore_statistics(single_rc, "out", model)
        rc = 1e-6 * 1e-3
        expected = rc * np.sqrt(sr**2 + sc**2 + sr**2 * sc**2)
        assert stats.std == pytest.approx(expected, rel=1e-12)

    def test_per_element_overrides(self, branched_tree):
        base = elmore_statistics(
            branched_tree, "a2",
            VariationModel(resistance_sigma=0.1),
        )
        # Zeroing an off-path edge's sigma changes nothing.
        off_path = elmore_statistics(
            branched_tree, "a2",
            VariationModel(resistance_sigma=0.1,
                           resistance_sigmas={"b1": 0.0}),
        )
        assert off_path.std == pytest.approx(base.std, rel=1e-12)
        # Zeroing an on-path edge's sigma reduces the variance.
        on_path = elmore_statistics(
            branched_tree, "a2",
            VariationModel(resistance_sigma=0.1,
                           resistance_sigmas={"trunk": 0.0}),
        )
        assert on_path.std < base.std

    def test_quantile_bound(self, single_rc):
        model = VariationModel(resistance_sigma=0.1)
        stats = elmore_statistics(single_rc, "out", model)
        assert stats.quantile_bound(3.0) == pytest.approx(
            stats.mean + 3 * stats.std
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            VariationModel(resistance_sigma=-0.1)
        with pytest.raises(ValidationError):
            VariationModel(capacitance_sigmas={"a": -0.5})


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("sr,sc", [(0.1, 0.0), (0.0, 0.15), (0.1, 0.1)])
    def test_mean_and_std_match(self, sr, sc):
        tree = rc_line(6, 200.0, 0.5e-12, driver_resistance=350.0)
        model = VariationModel(resistance_sigma=sr, capacitance_sigma=sc)
        stats = elmore_statistics(tree, "n6", model)
        samples = monte_carlo_elmore(tree, "n6", model, samples=6000,
                                     seed=3)
        assert np.mean(samples) == pytest.approx(stats.mean, rel=5e-3)
        assert np.std(samples) == pytest.approx(stats.std, rel=5e-2)

    def test_branched_topology(self, branched_tree):
        model = VariationModel(resistance_sigma=0.12,
                               capacitance_sigma=0.08)
        stats = elmore_statistics(branched_tree, "a2", model)
        samples = monte_carlo_elmore(branched_tree, "a2", model,
                                     samples=8000, seed=11)
        assert np.mean(samples) == pytest.approx(stats.mean, rel=5e-3)
        assert np.std(samples) == pytest.approx(stats.std, rel=5e-2)

    def test_deterministic_given_seed(self, branched_tree):
        model = VariationModel(resistance_sigma=0.1)
        a = monte_carlo_elmore(branched_tree, "a2", model, samples=50,
                               seed=7)
        b = monte_carlo_elmore(branched_tree, "a2", model, samples=50,
                               seed=7)
        np.testing.assert_array_equal(a, b)

    def test_sample_count_validated(self, branched_tree):
        with pytest.raises(AnalysisError):
            monte_carlo_elmore(branched_tree, "a2", VariationModel(),
                               samples=0)

    def test_sampled_bound_property(self):
        """Every variation sample's Elmore value still upper-bounds that
        sample's true delay (the Theorem holds pointwise in process
        space)."""
        from repro.analysis import measure_delay
        from repro.circuit import RCTree
        tree = rc_line(4, 150.0, 0.3e-12)
        model = VariationModel(resistance_sigma=0.2,
                               capacitance_sigma=0.2)
        rng = np.random.default_rng(5)
        for _ in range(5):
            perturbed = RCTree("in")
            parent = "in"
            for name in tree.node_names:
                view = tree.node(name)
                r = view.resistance * (1 + rng.normal(0, 0.2))
                c = view.capacitance * (1 + rng.normal(0, 0.2))
                perturbed.add_node(name, parent, max(r, 1.0),
                                   max(c, 1e-15))
                parent = name
            td = elmore_delay(perturbed, "n4")
            actual = measure_delay(perturbed, "n4")
            assert actual <= td * (1 + 1e-9)
