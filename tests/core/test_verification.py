"""Unit tests for the claim-verification helpers."""

import pytest

from repro.circuit import rc_line
from repro.core.verification import verify_area_theorem, verify_tree
from repro.signals import SaturatedRamp


class TestVerifyTree:
    def test_fig1_all_claims_hold(self, fig1):
        verdict = verify_tree(fig1)
        assert verdict.all_hold, [
            (v.node, v) for v in verdict.failures()
        ]
        assert len(verdict.nodes) == fig1.num_nodes

    def test_node_subset(self, fig1):
        verdict = verify_tree(fig1, nodes=["n5"])
        assert len(verdict.nodes) == 1
        assert verdict.nodes[0].node == "n5"

    def test_verdict_fields_consistent(self, fig1):
        verdict = verify_tree(fig1, nodes=["n5"])
        v = verdict.nodes[0]
        assert v.elmore == pytest.approx(1.2e-9, rel=1e-3)
        assert v.actual_delay <= v.elmore
        assert v.actual_delay >= v.lower_bound
        assert v.stats.mode <= v.stats.median <= v.stats.mean
        assert v.all_hold

    def test_corpus_claims_hold(self, corpus):
        for tree in corpus[:4]:
            verdict = verify_tree(tree, samples=2001)
            assert verdict.all_hold, verdict.failures()

    def test_failures_empty_when_all_hold(self, single_rc):
        assert verify_tree(single_rc).failures() == []


class TestVerifyAreaTheorem:
    def test_step_input(self, fig1):
        result = verify_area_theorem(fig1, "n5")
        assert result["relative_error"] < 1e-6
        assert result["elmore"] == pytest.approx(1.2e-9, rel=1e-3)

    def test_ramp_input(self, fig1):
        result = verify_area_theorem(
            fig1, "n7", signal=SaturatedRamp(3e-9)
        )
        assert result["relative_error"] < 1e-6

    def test_line_leaf(self):
        line = rc_line(8, 75.0, 0.3e-12)
        result = verify_area_theorem(line, "n8")
        assert result["relative_error"] < 1e-6
