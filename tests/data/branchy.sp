branchy test deck $ title line with trailing comment
VIN src 0 DC 3.3
* driver
RDRV src d 0.35k
CD d 0 10f
* two branches out of d, with continuations
RB1 d b1
+ 210
CB1 b1 0 95f
RB2 d b2 180 ; inline comment
CB2 b2 0
+ 140f
RB1A b1 leafA 330
CLEAFA leafA 0 60f
RB2A b2 leafB 410
CLEAFB leafB 0 75f
.tran 1p 10n
.print v(leafA)
.end
R_GHOST after end 999
