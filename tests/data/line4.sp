* four-segment line with mixed value formats
VIN in 0 DC 1.0
R1 in n1 0.12k
C1 n1 0 120f
R2 n1 n2 120
C2 n2 0 0.12p
R3 n2 n3 1.2e2
C3 n3 0 120e-15
R4 n3 n4 120
C4 n4 0 120fF
.end
