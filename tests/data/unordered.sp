* elements in scrambled order, parallel caps merge at n2
C2A n2 0 50f
R2 n1 n2 200
C1 n1 0 80f
VIN in 0 1
C2B 0 n2 70f
R1 in n1 100
.end
