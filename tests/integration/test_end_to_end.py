"""End-to-end flows exercising many modules together."""

import numpy as np
import pytest

from repro import (
    ExactAnalysis,
    SaturatedRamp,
    delay_bounds,
    elmore_delay,
    measure_delay,
    parse_rc_tree,
    tree_to_netlist,
)
from repro.analysis import simulate, simulate_step_response
from repro.core import verify_tree
from repro.opt import BufferSink, BufferType, insert_buffers
from repro.routing import route_net
from repro.sta import Design, analyze, default_library
from repro.workloads import fig1_tree


class TestNetlistRoundTripFlow:
    """SPICE text -> tree -> analysis -> bounds, full circle."""

    def test_parse_analyze_verify(self, tmp_path):
        source = tree_to_netlist(fig1_tree(), title="fig1", amplitude=1.0)
        tree, amplitude = parse_rc_tree(source)
        assert amplitude == 1.0
        bounds = delay_bounds(tree, "n5")
        actual = measure_delay(tree, "n5")
        assert bounds.contains(actual)
        assert verify_tree(tree).all_hold


class TestRoutedNetFlow:
    """Placement -> routing -> RC tree -> bounds vs exact vs transient."""

    def test_three_way_agreement(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(400e-6, 100e-6), (100e-6, 500e-6)],
            driver_resistance=220.0,
            pin_loads=[15e-15, 10e-15],
        )
        analysis = ExactAnalysis(tree)
        horizon = analysis.transfer(sinks[0]).settle_time(1e-9)
        transient = simulate_step_response(tree, horizon, num_steps=6000)
        for sink in sinks:
            exact = measure_delay(analysis, sink)
            stepped = transient.delay(sink, final_value=1.0)
            bound = elmore_delay(tree, sink)
            assert stepped == pytest.approx(exact, rel=5e-3)
            assert exact <= bound

    def test_ramp_driven_routed_net(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(800e-6, 0.0)],
            driver_resistance=300.0,
            pin_loads=[20e-15],
        )
        signal = SaturatedRamp(0.5e-9)
        analysis = ExactAnalysis(tree)
        exact = measure_delay(analysis, sinks[0], signal)
        bounds = delay_bounds(tree, sinks[0], signal=signal)
        assert bounds.contains(exact, rel_tol=1e-6)
        # Transient simulator agrees on the waveform.
        horizon = signal.settle_time + \
            analysis.transfer(sinks[0]).settle_time(1e-9)
        result = simulate(tree, signal, horizon, num_steps=8000)
        wave_exact = analysis.response(sinks[0], signal, result.times)
        np.testing.assert_allclose(
            result.at(sinks[0]), wave_exact, atol=2e-3
        )


class TestBufferedSTAFlow:
    """Buffer insertion feeding a net override back into STA."""

    def test_buffering_improves_sta_critical_path(self):
        from repro.circuit import rc_line
        lib = default_library()

        def design_with_net(tree, sink_node):
            d = Design("flow", lib)
            d.add_input("a")
            d.add_output("z")
            d.add_instance("src", "DRV")
            d.add_instance("dst", "INV")
            d.connect("na", ("@port", "a"), [("src", "a")])
            d.connect("long", ("src", "y"), [("dst", "a")])
            d.connect("nz", ("dst", "y"), [("@port", "z")])
            from repro.sta import Pin
            override = {"long": (tree, {Pin("dst", "a"): sink_node})}
            return analyze(d, net_overrides=override)

        # A long unbuffered wire, then the same wire split by a repeater
        # (modelled as two stages lumped into an equivalent tree is not
        # possible within one net — so compare against a shorter wire to
        # confirm the wire dominates, and separately confirm buffering
        # helps at the net level).
        wire = rc_line(16, 120.0, 60e-15, prefix="w")
        loaded = wire.copy()
        loaded.add_load("w16", lib.get("INV").input_capacitance)
        long_result = design_with_net(loaded, "w16")

        buffer = BufferType("B", 12e-15, 100.0, 20e-12)
        net_result = insert_buffers(
            wire, [BufferSink("w16", lib.get("INV").input_capacitance)],
            buffer, lib.get("DRV").driver_resistance,
        )
        assert net_result.improvement > 0.0
        # STA critical delay is dominated by the unbuffered long net.
        assert long_result.critical_delay > 0.1e-9


class TestScaledFamilies:
    """Physical scaling laws hold through the whole stack."""

    def test_elmore_scales_as_rc(self, fig1):
        scaled = fig1.scaled(r_scale=3.0, c_scale=2.0)
        assert elmore_delay(scaled, "n5") == pytest.approx(
            6.0 * elmore_delay(fig1, "n5")
        )
        assert measure_delay(scaled, "n5") == pytest.approx(
            6.0 * measure_delay(fig1, "n5"), rel=1e-9
        )

    def test_bounds_scale_consistently(self, fig1):
        scaled = fig1.scaled(r_scale=2.0, c_scale=2.0)
        b0 = delay_bounds(fig1, "n5")
        b1 = delay_bounds(scaled, "n5")
        assert b1.upper == pytest.approx(4.0 * b0.upper)
        assert b1.lower == pytest.approx(4.0 * b0.lower)
