"""Smoke tests: every example script runs end to end and asserts its own
claims (the examples contain assert statements that embody the paper's
bounds)."""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = [
    "quickstart.py",
    "generalized_inputs.py",
    "interconnect_exploration.py",
    "sta_flow.py",
    "repeater_insertion.py",
    "clock_skew.py",
    "variation_aware_timing.py",
    "batched_variation_sweep.py",
    "crosstalk_limits.py",
    "traced_sweep.py",
    "live_metrics.py",
]


def run_example(filename):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, filename))
    spec = importlib.util.spec_from_file_location(
        f"example_{filename[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename):
    output = run_example(filename)
    assert output.strip(), f"{filename} produced no output"


class TestExampleContent:
    def test_quickstart_shows_table(self):
        out = run_example("quickstart.py")
        assert "0.919" in out            # Table I actual delay at n5
        assert "never lied" in out

    def test_generalized_inputs_converges(self):
        out = run_example("generalized_inputs.py")
        assert "100.0% of T_D" in out    # Corollary 3 asymptote
        assert "NO" not in out           # every bound held

    def test_interconnect_agreement(self):
        out = run_example("interconnect_exploration.py")
        assert "Elmore's winner == exact winner: yes" in out

    def test_sta_flow_certifies(self):
        out = run_example("sta_flow.py")
        assert "certified: elmore >= exact" in out

    def test_repeater_quadratic_to_linear(self):
        out = run_example("repeater_insertion.py")
        assert "quadratically" in out

    def test_clock_skew_bound(self):
        out = run_example("clock_skew.py")
        assert "certified skew bound" in out

    def test_batched_sweep_matches_loop(self):
        out = run_example("batched_variation_sweep.py")
        assert "identical samples" in out
        assert "lower <= T_D everywhere" in out

    def test_crosstalk_limits(self):
        out = run_example("crosstalk_limits.py")
        assert "(<= bound: NO)" in out      # the coupled case breaks it
        assert out.count("(<= bound: yes)") == 1
