"""Capstone integration: a miniature backend flow across every layer.

characterize a cell -> build + place a design -> route its nets ->
forward STA (arrivals + slews) -> backward slack -> find the worst net ->
repair its slew with repeaters -> buffer it for delay -> re-verify with
the exact engine — all on the Elmore bound machinery the paper certifies.
"""

import numpy as np
import pytest

from repro.circuit import RCTree
from repro.core import elmore_delay
from repro.opt import BufferSink, BufferType, insert_buffers, repair_slews
from repro.opt.slew_repair import stage_sigmas
from repro.sta import (
    CellLibrary,
    Design,
    Pin,
    analyze,
    characterize_driver,
    compute_slacks,
    lumped_load_delay_oracle,
)


@pytest.fixture(scope="module")
def flow_library():
    """A library whose inverter was characterized, not hand-written."""
    lib = CellLibrary(name="flow")
    fit = characterize_driver(
        lumped_load_delay_oracle(380.0, 22e-12, 5e-15),
        loads=[4e-15, 8e-15, 16e-15, 32e-15],
    )
    lib.add(fit.to_cell("C_INV", input_capacitance=8e-15,
                        slew_impact=0.25, output_slew=6e-12))
    fit_drv = characterize_driver(
        lumped_load_delay_oracle(90.0, 18e-12, 8e-15),
        loads=[8e-15, 16e-15, 32e-15, 64e-15],
    )
    lib.add(fit_drv.to_cell("C_DRV", input_capacitance=14e-15,
                            slew_impact=0.15, output_slew=4e-12))
    return lib


@pytest.fixture(scope="module")
def placed_design(flow_library):
    d = Design("flow", flow_library)
    d.add_input("a")
    d.add_output("z")
    pitch = 250e-6
    d.add_instance("src", "C_DRV", position=(0.0, 0.0))
    d.add_instance("mid", "C_INV", position=(pitch, 0.3 * pitch))
    d.add_instance("out", "C_INV", position=(2 * pitch, 0.0))
    d.connect("na", ("@port", "a"), [("src", "a")])
    d.connect("n1", ("src", "y"), [("mid", "a")])
    d.connect("n2", ("mid", "y"), [("out", "a")])
    d.connect("nz", ("out", "y"), [("@port", "z")])
    return d


class TestFullFlow:
    def test_sta_and_slack(self, placed_design):
        result = analyze(placed_design)
        exact = analyze(placed_design, delay_model="exact")
        assert result.critical_delay >= exact.critical_delay
        report = compute_slacks(placed_design, result,
                                result.critical_delay + 0.1e-9)
        assert report.worst_slack == pytest.approx(0.1e-9, rel=1e-6)

    def test_slew_repair_then_buffering_on_worst_net(self, placed_design,
                                                     flow_library):
        result = analyze(placed_design)
        # The worst (largest dispersion) net from the forward pass.
        worst_net = max(
            result.nets,
            key=lambda name: max(
                result.slew[s] for s in result.nets[name].sink_nodes
            ),
        )
        elaborated = result.nets[worst_net]
        # Re-express the elaborated net as a repairable wire: its tree
        # already includes driver R as the first edge, so strip it.
        first = elaborated.tree.children_of(elaborated.tree.input_node)[0]
        wire = RCTree("in")
        for name in elaborated.tree.node_names:
            view = elaborated.tree.node(name)
            if name == first:
                continue
            parent = view.parent if view.parent != first else "w0"
            if view.parent == elaborated.tree.input_node:
                continue
            if parent == "w0" and "w0" not in wire:
                wire.add_node("w0", "in", 1e-3, 0.0)
            wire.add_node(name, parent, view.resistance, view.capacitance)
        if wire.num_nodes == 0:
            pytest.skip("worst net is a lumped star; nothing to repair")
        drive_r = elaborated.tree.node(first).resistance

        sink_nodes = [
            node for node in elaborated.sink_nodes.values()
            if node in wire
        ]
        if not sink_nodes:
            pytest.skip("sinks live on the stripped driver node")
        buffer = BufferType("REP", 10e-15, 110.0, 20e-12)
        sinks = [BufferSink(node, 0.0) for node in sink_nodes]
        base_sigma = max(
            stage_sigmas(wire, sinks, buffer, drive_r, []).values()
        )
        repaired = repair_slews(
            wire, sinks, buffer, drive_r, sigma_limit=base_sigma * 0.7
        )
        assert repaired.worst_sigma <= base_sigma * 0.7 * (1 + 1e-9)

        buffered = insert_buffers(wire, sinks, buffer, drive_r)
        assert buffered.required_at_driver >= \
            buffered.unbuffered_required - 1e-18

    def test_elmore_totals_bound_exact_everywhere(self, placed_design):
        elmore = analyze(placed_design)
        exact = analyze(placed_design, delay_model="exact")
        for pin, t in exact.arrival.items():
            assert elmore.arrival[pin] >= t * (1 - 1e-12)
