"""Cross-process span/metric aggregation (repro.obs.aggregate).

The fault-path tests reuse the fork-inheritance idiom from
``tests/parallel/test_executor``: a module-level ``_PARENT`` pid lets a
task die or hang only inside a pool worker, and a filesystem sentinel
makes the *first* attempt fail while the retry succeeds — which is what
the exactly-once merge contract is about.
"""

import os
import time

import numpy as np
import pytest

from repro.obs.aggregate import (
    ShardObsCapture,
    merge_worker_payload,
    registry_delta,
    span_from_dict,
)
from repro.obs.metrics import MetricsRegistry, counter, get_registry
from repro.obs.trace import Span, get_tracer, span, tracing
from repro.parallel import available_backends, run_sharded

_PARENT = os.getpid()

needs_process = pytest.mark.skipif(
    "process" not in available_backends(),
    reason="process backend unavailable on this host",
)


# ---------------------------------------------------------------------------
# Module-level tasks (the process backend pickles them by reference).

def _traced_increment(payload):
    """Inc a counter by the payload and record a span around it."""
    with span("aggtest.work", payload=payload):
        counter("aggtest_units_total", "units processed").inc(payload)
    return payload * 10


def _die_once_then_increment(payload):
    """First worker attempt: inc, then kill the worker (the delta must
    die with it).  Retry (and the parent): inc and return."""
    sentinel, amount = payload
    counter("aggtest_units_total", "units processed").inc(amount)
    if os.getpid() != _PARENT and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(1)
    return amount


def _hang_once_then_increment(payload):
    """First worker attempt: inc, then hang past the test timeout."""
    sentinel, amount = payload
    counter("aggtest_units_total", "units processed").inc(amount)
    if os.getpid() != _PARENT and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("hung")
        time.sleep(60.0)
    return amount


# ---------------------------------------------------------------------------
# Worker half, in-process.

class TestShardObsCapture:
    def test_payload_shape_and_span_collection(self):
        with ShardObsCapture() as cap:
            with span("unit.outer", k=1):
                with span("unit.inner"):
                    pass
            counter("aggtest_capture_total", "t").inc(3)
        payload = cap.payload()
        assert payload["pid"] == os.getpid()
        names = [entry["name"] for entry in payload["spans"]]
        assert names == ["unit.outer"]
        assert payload["spans"][0]["children"][0]["name"] == "unit.inner"
        assert payload["counters"]["aggtest_capture_total"]["delta"] == 3.0

    def test_capture_disables_tracer_on_exit(self):
        tracer = get_tracer()
        tracer.disable()
        with ShardObsCapture():
            assert tracer.enabled
        assert not tracer.enabled
        assert tracer.to_dicts() == []

    def test_delta_ignores_preexisting_values(self):
        counter("aggtest_base_total", "t").inc(7)
        with ShardObsCapture() as cap:
            counter("aggtest_base_total", "t").inc(2)
        assert cap.payload()["counters"]["aggtest_base_total"]["delta"] \
            == 2.0


class TestRegistryDelta:
    def test_counter_gauge_histogram_deltas(self):
        reg = MetricsRegistry()
        c = reg.counter("d_total", "t")
        g = reg.gauge("d_gauge", "t")
        h = reg.histogram("d_seconds", "t", buckets=(1.0, 2.0))
        c.inc(2)
        g.set(5)
        h.observe(0.5)
        before = reg.to_dict()
        c.inc(3)
        g.set(9)
        h.observe(1.5)
        delta = registry_delta(before, reg.to_dict())
        assert delta["counters"]["d_total"]["delta"] == 3.0
        assert delta["gauges"]["d_gauge"]["value"] == 9.0
        hist = delta["histograms"]["d_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(1.5)
        assert hist["bucket_counts"] == [0, 1, 0]

    def test_unchanged_metrics_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("d_total", "t").inc(2)
        reg.gauge("d_gauge", "t").set(1)
        snap = reg.to_dict()
        delta = registry_delta(snap, reg.to_dict())
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSpanFromDict:
    def test_round_trip_tree(self):
        tracer = get_tracer()
        with tracing():
            with span("rt.root", a=1):
                with span("rt.child"):
                    pass
            dumped = tracer.to_dicts()
        rebuilt = span_from_dict(dumped[0])
        assert isinstance(rebuilt, Span)
        assert rebuilt.name == "rt.root"
        assert rebuilt.pid == os.getpid()
        assert rebuilt.attributes == {"a": 1}
        assert rebuilt.duration == pytest.approx(dumped[0]["duration"])
        assert rebuilt.children[0].name == "rt.child"
        assert rebuilt.children[0].seq == dumped[0]["children"][0]["seq"]


class TestMergeWorkerPayload:
    def test_merges_into_base_and_labeled_series(self):
        reg = get_registry()
        base_before = reg.counter("aggtest_merge_total", "t").value
        payload = {
            "pid": 4242, "worker_id": 9,
            "spans": [],
            "counters": {"aggtest_merge_total": {"help": "t",
                                                 "delta": 5.0}},
            "gauges": {}, "histograms": {},
        }
        merge_worker_payload(payload, shard=0, run_span=None)
        base = reg.counter("aggtest_merge_total", "t")
        assert base.value - base_before == 5.0
        labeled = {key: child.value
                   for key, child in base.label_series()}
        assert labeled[(("worker", "9"),)] >= 5.0

    def test_grafts_worker_subtree_under_run_span(self):
        tracer = get_tracer()
        with tracing():
            with span("merge.run") as run_span:
                payload = {
                    "pid": 777, "worker_id": 2,
                    "spans": [{"name": "w.work", "start": 10.0,
                               "duration": 0.5, "pid": 777, "seq": 0,
                               "attributes": {}, "children": []}],
                    "counters": {}, "gauges": {}, "histograms": {},
                }
                merge_worker_payload(payload, shard=3, run_span=run_span)
        workers = tracer.find("parallel.worker")
        assert len(workers) == 1
        wrapper = workers[0]
        assert wrapper.attributes == {"pid": 777, "worker_id": 2,
                                      "shard": 3}
        assert wrapper.pid == 777
        assert wrapper.children[0].name == "w.work"

    def test_none_payload_is_a_no_op(self):
        before = get_registry().counter(
            "parallel_worker_payloads_total").value
        merge_worker_payload(None, shard=0, run_span=None)
        after = get_registry().counter(
            "parallel_worker_payloads_total").value
        assert after == before


# ---------------------------------------------------------------------------
# End to end through the sharded engine.

@needs_process
class TestSharded:
    def test_traced_run_merges_spans_and_counter_sums(self):
        reg = get_registry()
        tracer = get_tracer()
        payloads = [1, 2, 3, 4]
        base_before = reg.counter("aggtest_units_total").value
        with tracing():
            out = run_sharded(_traced_increment, payloads, jobs=2,
                              backend="process")
        assert out == [10, 20, 30, 40]
        # Parent-side merged counter equals the sum of worker deltas.
        base = reg.counter("aggtest_units_total")
        assert base.value - base_before == float(sum(payloads))
        per_worker = sum(child.value
                         for _key, child in base.label_series())
        assert per_worker >= float(sum(payloads))
        # Worker span trees landed under parallel.run as tagged
        # parallel.worker subtrees.
        workers = tracer.find("parallel.worker")
        assert len(workers) == len(payloads)
        for wrapper in workers:
            assert wrapper.attributes["pid"] != os.getpid()
            assert wrapper.attributes["worker_id"] is not None
            assert wrapper.attributes["shard"] in range(len(payloads))
            assert [c.name for c in wrapper.children] == ["aggtest.work"]
        run_root = tracer.find("parallel.run")[0]
        assert all(w in run_root.children for w in workers)

    def test_disabled_tracing_ships_no_payloads(self):
        reg = get_registry()
        get_tracer().disable()
        merged_before = reg.counter("parallel_worker_payloads_total").value
        out = run_sharded(_square_like, [3, 5], jobs=2, backend="process")
        assert out == [9, 25]
        assert reg.counter("parallel_worker_payloads_total").value \
            == merged_before

    def test_disabled_path_stays_bit_identical(self):
        from repro.circuit import rc_line
        from repro.core.variation import (
            VariationModel,
            monte_carlo_delay_matrix,
        )

        get_tracer().disable()
        tree = rc_line(32, 1e-3, 1e-15)
        model = VariationModel(resistance_sigma=0.1,
                               capacitance_sigma=0.05)
        serial = monte_carlo_delay_matrix(
            tree, model, 600, seed=11, jobs=1, shard_size=150
        )
        forked = monte_carlo_delay_matrix(
            tree, model, 600, seed=11, jobs=2, shard_size=150,
            backend="process",
        )
        assert np.array_equal(serial, forked)
        with tracing():
            traced = monte_carlo_delay_matrix(
                tree, model, 600, seed=11, jobs=2, shard_size=150,
                backend="process",
            )
        assert np.array_equal(serial, traced)

    def test_killed_worker_retry_merges_exactly_once(self, tmp_path):
        reg = get_registry()
        base_before = reg.counter("aggtest_units_total").value
        sentinel = str(tmp_path / "died-once")
        with tracing():
            out = run_sharded(
                _die_once_then_increment, [(sentinel, 4)], jobs=2,
                backend="process", retries=2,
            )
        assert out == [4]
        # The first attempt inc'd 4 and died before shipping a payload;
        # only the accepted retry merges: exactly one delta of 4.
        assert reg.counter("aggtest_units_total").value \
            - base_before == 4.0

    def test_hung_worker_retry_merges_exactly_once(self, tmp_path):
        reg = get_registry()
        base_before = reg.counter("aggtest_units_total").value
        sentinel = str(tmp_path / "hung-once")
        with tracing():
            out = run_sharded(
                _hang_once_then_increment, [(sentinel, 7)], jobs=2,
                backend="process", timeout=2.0, retries=2,
            )
        assert out == [7]
        assert reg.counter("aggtest_units_total").value \
            - base_before == 7.0


def _square_like(x):
    return x * x
