"""Differential tests: instrumentation must never change results.

Two invariants are pinned here:

* with tracing *disabled* (the default), instrumented code paths return
  bit-for-bit the same arrays as with tracing enabled — the spans only
  observe, never perturb;
* the instrumented batched engine still matches the scalar oracle to
  1e-9 relative, so wrapping the hot loops in spans did not reorder or
  alter the arithmetic.

Plus smoke coverage that the expected spans and counters actually fire
when tracing is on.
"""

import numpy as np
import pytest

from repro.circuit import RCTree, random_tree, rc_line
from repro.core.batch import (
    batch_elmore_delays,
    batch_transfer_moments,
    compile_topology,
)
from repro.core.elmore import elmore_delays
from repro.core.incremental import IncrementalElmore
from repro.core.moments import transfer_moments
from repro.core.variation import (
    VariationModel,
    monte_carlo_elmore,
)
from repro.core.verification import verify_tree
from repro.obs import get_registry, get_tracer, tracing, tracing_enabled
from repro.sta import Design, analyze, default_library
from repro.workloads import fig1_tree


@pytest.fixture
def tree():
    return random_tree(40, seed=9)


def _rebuild(tree, res_row, cap_row):
    """A fresh tree with the same wiring and one batch row's elements."""
    clone = RCTree(tree.input_node)
    for i, name in enumerate(tree.node_names):
        view = tree.node(name)
        clone.add_node(name, view.parent, float(res_row[i]),
                       float(cap_row[i]))
    return clone


def _sweep_inputs(tree, batch=16, seed=3):
    topo = compile_topology(tree)
    rng = np.random.default_rng(seed)
    res = topo.resistances * rng.uniform(0.8, 1.2, (batch, topo.num_nodes))
    cap = topo.capacitances * rng.uniform(0.8, 1.2, (batch, topo.num_nodes))
    return topo, res, cap


class TestTracingNeverChangesResults:
    def test_batch_sweep_bit_for_bit(self, tree):
        topo, res, cap = _sweep_inputs(tree)
        assert not tracing_enabled()
        baseline = batch_elmore_delays(topo, res, cap)
        with tracing():
            traced = batch_elmore_delays(topo, res, cap)
        assert np.array_equal(baseline, traced)

    def test_moment_sweep_bit_for_bit(self, tree):
        topo, res, cap = _sweep_inputs(tree)
        baseline = batch_transfer_moments(topo, 3, res, cap)
        with tracing():
            traced = batch_transfer_moments(topo, 3, res, cap)
        assert np.array_equal(baseline.coefficients, traced.coefficients)

    def test_scalar_walks_bit_for_bit(self, tree):
        base_delays = elmore_delays(tree)
        base_moments = transfer_moments(tree, 3)
        with tracing():
            assert np.array_equal(base_delays, elmore_delays(tree))
            traced_moments = transfer_moments(tree, 3)
        for name in tree.node_names:
            assert base_moments.mean(name) == traced_moments.mean(name)

    def test_monte_carlo_bit_for_bit(self, tree):
        model = VariationModel(resistance_sigma=0.1,
                               capacitance_sigma=0.1)
        node = tree.leaves()[0]
        baseline = monte_carlo_elmore(tree, node, model, samples=64,
                                      seed=5)
        with tracing():
            traced = monte_carlo_elmore(tree, node, model, samples=64,
                                        seed=5)
        assert np.array_equal(baseline, traced)


class TestInstrumentedBatchVsScalarOracle:
    def test_elmore_matches_scalar_walk(self, tree):
        topo, res, cap = _sweep_inputs(tree, batch=8)
        with tracing():
            batched = batch_elmore_delays(topo, res, cap)
        for b in range(res.shape[0]):
            shadow = _rebuild(tree, res[b], cap[b])
            np.testing.assert_allclose(
                batched[b], elmore_delays(shadow), rtol=1e-9
            )

    def test_moments_match_scalar_walk(self, tree):
        topo, res, cap = _sweep_inputs(tree, batch=8)
        with tracing():
            batched = batch_transfer_moments(topo, 3, res, cap)
        for b in range(res.shape[0]):
            shadow = _rebuild(tree, res[b], cap[b])
            scalar = transfer_moments(shadow, 3)
            np.testing.assert_allclose(
                batched.coefficients[:, b, :], scalar.coefficients,
                rtol=1e-9, atol=0.0,
            )


class TestSpansAndCounters:
    def test_batch_phases_traced(self):
        tree = rc_line(32, 50.0, 2e-13)
        with tracing() as tracer:
            topo, res, cap = _sweep_inputs(tree)
            batch_elmore_delays(topo, res, cap)
        # Fresh tree => a compile span; the sweep nests its level sweeps.
        assert tracer.find("batch.compile")
        sweeps = tracer.find("batch.elmore_delays")
        assert sweeps and sweeps[0].attributes["B"] == 16
        assert [c.name for c in sweeps[0].children] == \
            ["batch.level_sweeps"]

    def test_verification_traced(self):
        tree = fig1_tree()
        with tracing() as tracer:
            verdict = verify_tree(tree, nodes=["n5"], samples=301)
        assert verdict.nodes[0].node == "n5"
        roots = tracer.find("verify.tree")
        assert roots and roots[0].attributes["nodes"] == 1
        node_spans = tracer.find("verify.node")
        assert node_spans and node_spans[0].attributes["grid"] >= 301

    def test_sta_traced(self):
        lib = default_library()
        d = Design("mini", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u0", "INV")
        d.connect("n0", ("@port", "a"), [("u0", "a")])
        d.connect("nz", ("u0", "y"), [("@port", "z")])
        with tracing() as tracer:
            analyze(d, delay_model="elmore")
        spans = tracer.find("sta.analyze")
        assert spans and spans[0].attributes["model"] == "elmore"
        assert spans[0].attributes["nets"] == 2

    def test_counters_tick(self, tree):
        registry = get_registry()
        registry.counter("scalar_walks_total").reset()
        walks = registry.counter("scalar_walks_total")
        before = walks.value
        elmore_delays(tree)
        transfer_moments(tree, 2)
        assert walks.value == before + 2

    def test_incremental_counters(self, tree):
        registry = get_registry()
        edits = registry.counter("incremental_edits_total")
        queries = registry.counter("incremental_queries_total")
        e0, q0 = edits.value, queries.value
        inc = IncrementalElmore(tree)
        leaf = tree.leaves()[0]
        inc.delay(leaf)
        inc.set_capacitance(leaf, 1e-13)
        inc.set_resistance(leaf, 75.0)
        inc.delay(leaf)
        assert edits.value == e0 + 2
        assert queries.value == q0 + 2

    def test_histogram_fed_by_span_metric(self):
        tree = rc_line(16, 50.0, 2e-13)
        hist = get_registry().histogram("batch_sweep_seconds")
        before = hist.count
        with tracing():
            topo, res, cap = _sweep_inputs(tree, batch=4)
            batch_elmore_delays(topo, res, cap)
        assert hist.count == before + 1

    def test_leftover_state_is_cleared(self):
        # The tracing() scopes above must not leak an enabled tracer.
        assert not tracing_enabled()
        assert get_tracer().span("x").__class__.__name__ == "_NullSpan"
