"""Tests for counters/gauges/histograms and their exporters."""

import json

import pytest

from repro._exceptions import ValidationError
from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("edits_total", "help text")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_cannot_decrease(self, registry):
        c = registry.counter("edits_total")
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        a = registry.counter("edits_total", "first wins")
        b = registry.counter("edits_total", "ignored")
        assert a is b
        assert a.help == "first wins"

    def test_kind_conflict(self, registry):
        registry.counter("thing_total")
        with pytest.raises(ValidationError):
            registry.gauge("thing_total")

    def test_illegal_name(self, registry):
        with pytest.raises(ValidationError):
            registry.counter("bad-name")
        with pytest.raises(ValidationError):
            registry.counter("9starts_with_digit")


class TestGauge:
    def test_set(self, registry):
        g = registry.gauge("capacity")
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5


class TestHistogram:
    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram("lat_seconds", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.min == 0.05 and h.max == 50.0
        assert h.mean == pytest.approx(56.05 / 5)
        assert h.cumulative_buckets() == [
            (0.1, 1), (1.0, 3), (10.0, 4), ("+Inf", 5),
        ]

    def test_boundary_value_counts_in_its_bucket(self, registry):
        # Prometheus semantics: le is inclusive.
        h = registry.histogram("b_seconds", buckets=[1.0, 2.0])
        h.observe(1.0)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 1), ("+Inf", 1)]

    def test_default_buckets(self, registry):
        h = registry.histogram("d_seconds")
        assert h.bounds == DEFAULT_SECONDS_BUCKETS

    def test_empty_mean_is_zero(self):
        assert Histogram("x_seconds").mean == 0.0


class TestRegistry:
    def test_reset_keeps_references(self, registry):
        c = registry.counter("a_total")
        h = registry.histogram("b_seconds")
        c.inc(3)
        h.observe(0.5)
        registry.reset()
        assert registry.counter("a_total") is c
        assert c.value == 0
        assert h.count == 0 and h.min is None
        c.inc()  # the held reference still feeds the registry
        assert registry.get("a_total").value == 1

    def test_names_in_registration_order(self, registry):
        registry.counter("z_total")
        registry.gauge("a")
        assert registry.names() == ["z_total", "a"]


class TestExporters:
    def _populate(self, registry):
        registry.counter("sweeps_total", "sweeps").inc(2)
        registry.gauge("depth").set(5)
        h = registry.histogram("t_seconds", "timings", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        return registry

    def test_json_round_trip(self, registry):
        self._populate(registry)
        data = json.loads(registry.to_json())
        rebuilt = MetricsRegistry.from_dict(data)
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.counter("sweeps_total").value == 2
        hist = rebuilt.get("t_seconds")
        assert hist.count == 2
        assert hist.cumulative_buckets() == [(0.1, 1), (1.0, 2),
                                             ("+Inf", 2)]

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            MetricsRegistry.from_dict({"x": {"kind": "summary"}})

    def test_prometheus_text(self, registry):
        self._populate(registry)
        text = registry.to_prometheus_text()
        assert text.endswith("\n")
        assert "# HELP sweeps_total sweeps" in text
        assert "# TYPE sweeps_total counter" in text
        assert "sweeps_total 2" in text
        assert "depth 5" in text
        assert "# TYPE t_seconds histogram" in text
        assert 't_seconds_bucket{le="0.1"} 1' in text
        assert 't_seconds_bucket{le="1.0"} 2' in text
        assert 't_seconds_bucket{le="+Inf"} 2' in text
        assert "t_seconds_count 2" in text
        # Every non-comment line is "name{labels} value" — scrapeable.
        for line in text.strip().split("\n"):
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part[0].isalpha() or name_part[0] == "_"
