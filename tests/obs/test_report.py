"""Tests for run reports: atomic writes, round-trips, rendering."""

import json
import os

import pytest

from repro._exceptions import ValidationError
from repro.obs import (
    SCHEMA,
    MetricsRegistry,
    Tracer,
    atomic_write_text,
    collect_report,
    format_seconds,
    load_report,
    render_report,
    render_span_tree,
    write_report,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "out.txt")
        atomic_write_text(path, "x")
        assert os.path.exists(path)

    def test_no_temp_litter(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "data")
        assert os.listdir(tmp_path) == ["out.txt"]


def _traced_tracer():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("root", N=8):
        with tracer.span("child"):
            pass
    return tracer


class TestReportRoundTrip:
    def test_collect_shape(self):
        tracer = _traced_tracer()
        registry = MetricsRegistry()
        registry.counter("x_total").inc(3)
        report = collect_report(
            command="repro stats", seed=11, extra={"k": "v"},
            tracer=tracer, registry=registry,
        )
        assert report["schema"] == SCHEMA
        assert report["command"] == "repro stats"
        assert report["seed"] == 11
        assert report["extra"] == {"k": "v"}
        assert report["spans"][0]["name"] == "root"
        assert report["metrics"]["x_total"]["value"] == 3
        assert "numpy" in report["environment"]

    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "run.json")
        write_report(path, tracer=_traced_tracer(),
                     registry=MetricsRegistry(), command="c", seed=1)
        report = load_report(path)
        assert report["command"] == "c"
        assert report["spans"][0]["children"][0]["name"] == "child"

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValidationError):
            load_report(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro.run_report/0",
                                    "spans": []}))
        with pytest.raises(ValidationError):
            load_report(str(path))

    def test_spans_carry_pid_and_seq(self):
        spans = _traced_tracer().to_dicts()
        root = spans[0]
        assert root["pid"] == os.getpid()
        assert root["seq"] == 0
        assert root["children"][0]["seq"] == 1

    def test_load_upgrades_v1_reports(self, tmp_path):
        # A /1 report predates pid/seq on spans; the reader shim fills
        # them in (pid unknown, seq in depth-first order) and retags.
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({
            "schema": "repro.run_report/1",
            "spans": [{
                "name": "root", "start": 0.0, "duration": 1.0,
                "self": 0.5, "attributes": {},
                "children": [{"name": "child", "start": 0.1,
                              "duration": 0.5, "self": 0.5,
                              "attributes": {}, "children": []}],
            }],
            "metrics": {},
        }))
        report = load_report(str(path))
        assert report["schema"] == SCHEMA
        root = report["spans"][0]
        assert root["pid"] is None and root["seq"] == 0
        assert root["children"][0]["seq"] == 1


class TestRendering:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(3.2e-3) == "3.2 ms"
        assert format_seconds(4.5e-6) == "4.5 us"
        assert format_seconds(7e-9) == "7 ns"

    def test_span_tree_layout(self):
        text = render_span_tree(_traced_tracer().to_dicts())
        lines = text.split("\n")
        assert lines[0].split() == ["span", "cum", "self", "attributes"]
        assert any(line.lstrip().startswith("root") and "N=8" in line
                   for line in lines)
        # The child is indented beneath its parent.
        root_idx = next(i for i, l in enumerate(lines)
                        if l.startswith("root"))
        assert lines[root_idx + 1].startswith("  child")

    def test_empty_span_tree_hint(self):
        assert "was tracing enabled" in render_span_tree([])

    def test_render_report_sections(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(2)
        registry.histogram("t_seconds").observe(0.25)
        report = collect_report(command="repro verify", seed=7,
                                tracer=_traced_tracer(),
                                registry=registry)
        text = render_report(report)
        assert "command: repro verify" in text
        assert "seed: 7" in text
        assert "root" in text and "child" in text
        assert "n_total" in text and "t_seconds" in text
        assert "count=1" in text
        assert "degraded" not in text

    def test_render_report_degraded_notices(self):
        registry = MetricsRegistry()
        fallback = registry.counter("parallel_shm_fallback_total", "t")
        fallback.inc()
        fallback.labels(reason="shm-unavailable").inc()
        registry.counter("parallel_degraded_total", "t").inc(2)
        report = collect_report(tracer=_traced_tracer(),
                                registry=registry)
        text = render_report(report)
        assert "degraded: shm→serial" in text
        assert "shm-unavailable" in text
        assert "2 shard(s) fell back" in text
