"""The live /metrics endpoint (repro.obs.server)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import counter
from repro.obs.server import start_metrics_server
from repro.obs.trace import span, tracing


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


@pytest.fixture
def server():
    instance = start_metrics_server(port=0)
    assert instance is not None
    yield instance
    instance.stop()


class TestRoutes:
    def test_healthz(self, server):
        status, _ctype, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_metrics_prometheus_text(self, server):
        counter("srvtest_hits_total", "hits").inc(2)
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        assert "# TYPE srvtest_hits_total counter" in body
        assert "srvtest_hits_total 2" in body

    def test_metrics_includes_labeled_worker_series(self, server):
        counter("srvtest_worker_total", "t").labels(worker="3").inc(4)
        _status, _ctype, body = _get(server.url + "/metrics")
        assert 'srvtest_worker_total{worker="3"} 4' in body

    def test_spans_json(self, server):
        with tracing():
            with span("srvtest.phase", k=1):
                pass
            _status, ctype, body = _get(server.url + "/spans")
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["tracing"] is True
        names = [entry["name"] for entry in payload["spans"]]
        assert "srvtest.phase" in names
        assert payload["spans"][0]["pid"] is not None

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0
        assert str(server.port) in server.url

    def test_stop_is_idempotent_and_closes_socket(self):
        instance = start_metrics_server(port=0)
        url = instance.url
        instance.stop()
        instance.stop()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/healthz")

    def test_context_manager(self):
        with start_metrics_server(port=0) as instance:
            status, _ctype, _body = _get(instance.url + "/healthz")
            assert status == 200

    def test_taken_port_returns_none(self):
        with start_metrics_server(port=0) as instance:
            assert start_metrics_server(port=instance.port) is None
