"""Tests for the span tracer: nesting, the disabled path, decorators."""

import threading

import pytest

from repro.obs import (
    Tracer,
    get_tracer,
    iter_span_dicts,
    span,
    traced,
    tracing,
    tracing_enabled,
)
from repro.obs.trace import _NULL_SPAN


class TestNesting:
    def test_tree_reconstruction(self):
        with tracing() as tracer:
            with span("outer", phase="sweep"):
                with span("inner-a", N=16):
                    pass
                with span("inner-b"):
                    with span("leaf"):
                        pass
        roots = tracer.roots
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.attributes == {"phase": "sweep"}
        assert outer.children[0].attributes == {"N": 16}

    def test_sibling_roots(self):
        with tracing() as tracer:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_timings_nest(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.end is not None and inner.end is not None
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.duration >= inner.duration
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration
        )

    def test_set_attribute_and_to_dict(self):
        with tracing() as tracer:
            with span("phase", B=4) as sp:
                sp.set_attribute("rows", 123)
        entry = tracer.to_dicts()[0]
        assert entry["name"] == "phase"
        assert entry["attributes"] == {"B": 4, "rows": 123}
        assert entry["duration"] >= entry["self"] >= 0.0
        assert entry["children"] == []

    def test_exception_recorded_and_stack_unwound(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
            with span("after"):
                pass
        roots = tracer.roots
        assert [r.name for r in roots] == ["failing", "after"]
        assert roots[0].attributes["error"] == "RuntimeError"

    def test_find_depth_first(self):
        with tracing() as tracer:
            with span("a"):
                with span("walk"):
                    pass
            with span("walk"):
                pass
        assert len(tracer.find("walk")) == 2
        assert tracer.find("missing") == []

    def test_iter_span_dicts(self):
        with tracing() as tracer:
            with span("root"):
                with span("mid"):
                    with span("leaf"):
                        pass
        names = [e["name"] for e in iter_span_dicts(tracer.to_dicts())]
        assert names == ["root", "mid", "leaf"]


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        first = span("anything", N=1)
        second = span("else")
        assert first is _NULL_SPAN and second is _NULL_SPAN
        with first as sp:
            sp.set_attribute("ignored", True)  # must not raise

    def test_disabled_records_nothing(self):
        tracer = get_tracer()
        tracer.reset()
        with span("invisible"):
            pass
        assert tracer.roots == []

    def test_scope_restores_prior_state(self):
        assert not tracing_enabled()
        with tracing():
            assert tracing_enabled()
            with tracing(reset=False):
                assert tracing_enabled()
            assert tracing_enabled()
        assert not tracing_enabled()


class TestTracedDecorator:
    def test_records_qualified_name_by_default(self):
        @traced()
        def hot_phase():
            return 41 + 1

        with tracing() as tracer:
            assert hot_phase() == 42
        assert len(tracer.roots) == 1
        assert tracer.roots[0].name.endswith("hot_phase")

    def test_explicit_name_and_attributes(self):
        @traced("custom.phase", kind="test")
        def fn():
            return "ok"

        with tracing() as tracer:
            fn()
        assert tracer.roots[0].name == "custom.phase"
        assert tracer.roots[0].attributes == {"kind": "test"}

    def test_disabled_calls_straight_through(self):
        calls = []

        @traced()
        def fn(x):
            calls.append(x)
            return x * 2

        assert not tracing_enabled()
        assert fn(3) == 6
        assert calls == [3]
        assert get_tracer().find(fn.__qualname__) == []


class TestThreads:
    def test_worker_threads_build_disjoint_roots(self):
        tracer = Tracer()
        tracer.enable()

        def work(tag):
            with tracer.span(f"root-{tag}"):
                with tracer.span(f"child-{tag}"):
                    pass

        threads = [threading.Thread(target=work, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots
        assert len(roots) == 4
        for root in roots:
            tag = root.name.split("-")[1]
            assert [c.name for c in root.children] == [f"child-{tag}"]
