"""The benchmark perf ledger and regression gate (repro.obs.trajectory)."""

import json

import pytest

from repro._exceptions import ValidationError
from repro.obs.trajectory import (
    DEFAULT_THRESHOLD,
    TRAJECTORY_SCHEMA,
    append_record,
    compare_trajectory,
    flatten_extra,
    git_revision,
    host_fingerprint,
    load_trajectory,
    metric_direction,
    record_from_rows,
)


def _rows_payload(extra, name="bench_x", quick=True, python="3.11.7"):
    return {
        "schema": "repro.bench_rows/1",
        "name": name,
        "title": "a bench",
        "generated_at": "2026-08-07T00:00:00Z",
        "quick": quick,
        "environment": {
            "python": python,
            "implementation": "CPython",
            "platform": "Linux-test",
            "machine": "x86_64",
            "cpu_count": 4,
        },
        "header": ["n", "speedup"],
        "rows": [["256", "5.0x"]],
        "extra": extra,
    }


class TestBuildingBlocks:
    def test_flatten_extra_nests_and_drops_non_numeric(self):
        flat = flatten_extra({
            "speedup": {"256": 5.0, "1024": 7.5},
            "wall_seconds": 1.25,
            "label": "text",
            "ok": True,
        })
        assert flat == {"speedup.256": 5.0, "speedup.1024": 7.5,
                        "wall_seconds": 1.25}

    def test_metric_direction(self):
        assert metric_direction("speedup.256") == "higher"
        assert metric_direction("wall_seconds") == "lower"
        assert metric_direction("sweep_wall") == "lower"
        assert metric_direction("batch_size") is None

    def test_host_fingerprint_pairs_like_hosts_only(self):
        a = {"python": "3.11.7", "platform": "Linux", "machine": "x86_64",
             "implementation": "CPython", "cpu_count": 4}
        b = dict(a, pid=999)  # run-local noise is excluded
        c = dict(a, cpu_count=8)
        assert host_fingerprint(a) == host_fingerprint(b)
        assert host_fingerprint(a) != host_fingerprint(c)

    def test_git_revision_in_this_checkout(self):
        rev = git_revision()
        assert rev is None or (isinstance(rev, str) and len(rev) >= 7)

    def test_record_from_rows(self):
        record = record_from_rows(
            _rows_payload({"speedup": {"256": 5.0}}), git_rev="abc1234"
        )
        assert record["schema"] == TRAJECTORY_SCHEMA
        assert record["bench"] == "bench_x"
        assert record["git_rev"] == "abc1234"
        assert record["metrics"] == {"speedup.256": 5.0}
        assert record["host"]["cpu_count"] == 4
        assert len(record["key"]) == 12

    def test_record_rejects_non_row_payload(self):
        with pytest.raises(ValidationError):
            record_from_rows({"schema": "other"})


class TestLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trajectory.jsonl")
        first = record_from_rows(_rows_payload({"speedup": {"256": 5.0}}),
                                 git_rev="r1")
        second = record_from_rows(_rows_payload({"speedup": {"256": 5.5}}),
                                  git_rev="r2")
        append_record(path, first)
        append_record(path, second)
        records = load_trajectory(path)
        assert [r["git_rev"] for r in records] == ["r1", "r2"]

    def test_load_skips_corrupt_and_foreign_lines(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        good = record_from_rows(_rows_payload({"speedup": {"256": 5.0}}),
                                git_rev="r1")
        path.write_text(
            "{truncated\n"
            + json.dumps({"schema": "other/1"}) + "\n"
            + json.dumps(good) + "\n"
        )
        records = load_trajectory(str(path))
        assert len(records) == 1
        assert records[0]["git_rev"] == "r1"

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "none.jsonl")) == []


class TestCompare:
    def _ledger(self, *speedups, name="bench_x"):
        return [
            record_from_rows(
                _rows_payload({"speedup": {"256": value}}, name=name),
                git_rev=f"r{k}",
            )
            for k, value in enumerate(speedups)
        ]

    def test_stable_runs_pass(self):
        comparison = compare_trajectory(self._ledger(5.0, 5.1))
        assert comparison.ok
        assert comparison.regressions == []
        assert "no regressions" in comparison.render()

    def test_synthetic_slowdown_fails_with_readable_table(self):
        comparison = compare_trajectory(self._ledger(5.0, 2.0))
        assert not comparison.ok
        assert len(comparison.regressions) == 1
        row = comparison.regressions[0]
        assert row["metric"] == "speedup.256"
        assert row["status"] == "REGRESSED"
        text = comparison.render()
        assert "REGRESSED" in text and "speedup.256" in text
        assert "bench_x" in text
        assert "1 metric(s) regressed" in text

    def test_lower_is_better_direction(self):
        records = [
            record_from_rows(
                _rows_payload({"sweep_wall_seconds": value}),
                git_rev=f"r{k}",
            )
            for k, value in enumerate([1.0, 2.0])
        ]
        comparison = compare_trajectory(records)
        assert not comparison.ok

    def test_within_threshold_noise_passes(self):
        low = 5.0 * (1.0 - DEFAULT_THRESHOLD + 0.01)
        assert compare_trajectory(self._ledger(5.0, low)).ok
        assert not compare_trajectory(
            self._ledger(5.0, low), threshold=0.1
        ).ok

    def test_different_hosts_never_compare(self):
        fast = record_from_rows(
            _rows_payload({"speedup": {"256": 9.0}}, python="3.11.7"),
            git_rev="r0",
        )
        slow = record_from_rows(
            _rows_payload({"speedup": {"256": 1.0}}, python="3.12.1"),
            git_rev="r1",
        )
        comparison = compare_trajectory([fast, slow])
        assert comparison.rows == []
        assert comparison.ok

    def test_selectors_pick_runs_by_offset(self):
        ledger = self._ledger(9.0, 2.0, 2.1)
        # prev vs latest: 2.0 -> 2.1 is fine...
        assert compare_trajectory(ledger).ok
        # ...but the run two back regressed against its predecessor.
        assert not compare_trajectory(ledger, baseline="2",
                                      candidate="prev").ok

    def test_bench_filter(self):
        ledger = (self._ledger(5.0, 1.0, name="bench_slow")
                  + self._ledger(5.0, 5.0, name="bench_ok"))
        assert not compare_trajectory(ledger).ok
        assert compare_trajectory(ledger, bench="bench_ok").ok

    def test_bad_selector_and_threshold_raise(self):
        with pytest.raises(ValidationError):
            compare_trajectory([], baseline="yesterday")
        with pytest.raises(ValidationError):
            compare_trajectory([], threshold=-0.5)

    def test_untracked_metrics_never_gate(self):
        records = [
            record_from_rows(
                _rows_payload({"batch_size": value}), git_rev=f"r{k}"
            )
            for k, value in enumerate([1000.0, 1.0])
        ]
        assert compare_trajectory(records).ok
