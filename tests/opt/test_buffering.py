"""Unit and integration tests for van Ginneken buffer insertion."""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.circuit import RCTree, rc_line
from repro.opt import (
    BufferSink,
    BufferType,
    buffered_stage_delays,
    insert_buffers,
)

BUF = BufferType("BUFX2", input_capacitance=12e-15,
                 output_resistance=120.0, intrinsic_delay=25e-12)


def long_line(n=20, r=80.0, c=40e-15):
    """A long wire with node names w1..wn (driver pad edge included)."""
    return rc_line(n, r, c, prefix="w")


class TestBufferType:
    def test_stage_delay(self):
        assert BUF.stage_delay(100e-15) == pytest.approx(
            25e-12 + 120.0 * 100e-15
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            BufferType("B", 0.0, 100.0)
        with pytest.raises(ValidationError):
            BufferType("B", 1e-15, -1.0)
        with pytest.raises(ValidationError):
            BufferType("B", 1e-15, 100.0, intrinsic_delay=-1e-12)
        with pytest.raises(ValidationError):
            BufferSink("x", -1e-15)


class TestInsertBuffers:
    def test_long_line_improves(self):
        tree = long_line()
        sinks = [BufferSink("w20", 20e-15)]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=300.0)
        assert result.buffer_nodes            # buffers were used
        assert result.improvement > 0.0
        assert result.required_at_driver > result.unbuffered_required

    def test_short_line_declines(self):
        """On a short light wire the buffer's own delay isn't worth it."""
        tree = rc_line(2, 20.0, 2e-15, prefix="w")
        sinks = [BufferSink("w2", 5e-15)]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=100.0)
        assert result.buffer_nodes == ()
        assert result.improvement == pytest.approx(0.0, abs=1e-18)

    def test_dp_required_matches_stage_evaluation(self):
        """The DP's objective must equal the re-evaluated staged Elmore
        delay of the chosen solution (zero required times: Q = -delay)."""
        tree = long_line()
        sinks = [BufferSink("w20", 20e-15, required_time=0.0)]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=300.0)
        arrival = buffered_stage_delays(
            tree, sinks, BUF, 300.0, result.buffer_nodes
        )
        assert -result.required_at_driver == pytest.approx(
            arrival["w20"], rel=1e-12
        )

    def test_unbuffered_required_matches_plain_elmore(self):
        from repro.core import elmore_delay
        tree = long_line()
        sinks = [BufferSink("w20", 20e-15)]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=300.0)
        loaded = tree.copy()
        loaded.add_load("w20", 20e-15)
        expected = elmore_delay(loaded, "w20") + \
            300.0 * loaded.total_capacitance()
        assert -result.unbuffered_required == pytest.approx(
            expected, rel=1e-12
        )

    def test_optimality_on_line_by_enumeration(self):
        """DP equals brute-force enumeration of all buffer subsets on a
        short line."""
        tree = rc_line(6, 150.0, 60e-15, prefix="w")
        sinks = [BufferSink("w6", 25e-15)]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=400.0)

        import itertools
        best = None
        for size in range(0, 4):
            for combo in itertools.combinations(tree.node_names, size):
                arrival = buffered_stage_delays(
                    tree, sinks, BUF, 400.0, combo
                )
                delay = arrival["w6"]
                if best is None or delay < best[0]:
                    best = (delay, combo)
        assert -result.required_at_driver == pytest.approx(
            best[0], rel=1e-12
        )
        assert set(result.buffer_nodes) == set(best[1])

    def test_branch_decoupling(self):
        """A buffer decouples a heavy side branch from the critical sink."""
        tree = RCTree("in")
        tree.add_node("trunk", "in", 100.0, 10e-15)
        tree.add_node("crit", "trunk", 100.0, 10e-15)
        parent = "trunk"
        for k in range(12):  # heavy non-critical branch
            name = f"h{k}"
            tree.add_node(name, parent, 200.0, 80e-15)
            parent = name
        sinks = [
            BufferSink("crit", 10e-15, required_time=0.0),
            BufferSink(parent, 10e-15, required_time=5e-9),  # relaxed
        ]
        result = insert_buffers(tree, sinks, BUF, driver_resistance=250.0)
        # The optimizer shields the heavy branch behind a buffer at or
        # below the trunk.
        assert any(b.startswith("h") or b == "trunk"
                   for b in result.buffer_nodes)
        assert result.improvement > 0.0

    def test_candidate_restriction(self):
        tree = long_line()
        sinks = [BufferSink("w20", 20e-15)]
        allowed = ["w10"]
        result = insert_buffers(
            tree, sinks, BUF, 300.0, candidates=allowed
        )
        assert set(result.buffer_nodes) <= set(allowed)

    def test_respects_required_times(self):
        """With generous required times everywhere, slack is positive."""
        tree = long_line()
        sinks = [BufferSink("w20", 20e-15, required_time=1e-6)]
        result = insert_buffers(tree, sinks, BUF, 300.0)
        assert result.required_at_driver > 0.0

    def test_validation(self):
        tree = long_line()
        with pytest.raises(ValidationError):
            insert_buffers(tree, [], BUF, 300.0)
        with pytest.raises(ValidationError):
            insert_buffers(tree, [BufferSink("nope", 1e-15)], BUF, 300.0)
        with pytest.raises(ValidationError):
            insert_buffers(
                tree, [BufferSink("w20", 1e-15)], BUF, 0.0
            )
        with pytest.raises(ValidationError):
            insert_buffers(
                tree, [BufferSink("w20", 1e-15),
                       BufferSink("w20", 2e-15)], BUF, 300.0
            )
        with pytest.raises(ValidationError):
            insert_buffers(
                tree, [BufferSink("w20", 1e-15)], BUF, 300.0,
                candidates=["ghost"],
            )


class TestStagedEvaluation:
    def test_no_buffers_reduces_to_plain_elmore(self):
        from repro.core import elmore_delay
        tree = long_line(8)
        sinks = [BufferSink("w8", 15e-15)]
        arrival = buffered_stage_delays(tree, sinks, BUF, 300.0, [])
        loaded = tree.copy()
        loaded.add_load("w8", 15e-15)
        expected = elmore_delay(loaded, "w8") + \
            300.0 * loaded.total_capacitance()
        assert arrival["w8"] == pytest.approx(expected, rel=1e-12)

    def test_exact_delay_also_improves(self):
        """The Elmore-optimized buffering also improves the *exact* delay
        of the physically staged net (the bound's practical payoff)."""
        from repro.analysis import ExactAnalysis, measure_delay

        tree = long_line()
        sinks = [BufferSink("w20", 20e-15)]
        result = insert_buffers(tree, sinks, BUF, 300.0)

        def exact_staged_delay(buffer_nodes):
            # Build each stage with its driver resistance and measure the
            # exact 50% delay; chain the stage delays.
            total = 0.0
            stage_nodes = list(buffer_nodes) + [None]
            # Reuse the staged Elmore splitter's structure by measuring
            # each stage directly.
            from repro.opt.buffering import buffered_stage_delays as _  # noqa
            # Simple approach for the line: split at buffer nodes.
            cut_points = sorted(
                buffer_nodes, key=lambda n: int(n[1:])
            )
            segments = []
            start = 0
            names = [f"w{k}" for k in range(1, 21)]
            for cut in cut_points + ["w20"]:
                end = names.index(cut)
                segments.append(names[start:end + 1])
                start = end + 1
            drive = 300.0
            t_in = 0.0
            for seg_names, is_last in zip(
                segments, [False] * (len(segments) - 1) + [True]
            ):
                stage = RCTree("in")
                parent = "in"
                for name in seg_names:
                    view = tree.node(name)
                    stage.add_node(name, parent, view.resistance,
                                   view.capacitance)
                    parent = name
                # Replace first edge's upstream with driver resistance in
                # series: model driver as extra resistor.
                stage2 = RCTree("in")
                stage2.add_node("drv#", "in", drive, 0.0)
                prev = "drv#"
                for name in seg_names:
                    view = tree.node(name)
                    stage2.add_node(name, prev, view.resistance,
                                    view.capacitance)
                    prev = name
                end_node = seg_names[-1]
                if is_last:
                    stage2.add_load(end_node, 20e-15)
                else:
                    stage2.add_load(end_node, BUF.input_capacitance)
                t_in += measure_delay(stage2, end_node)
                if not is_last:
                    t_in += BUF.intrinsic_delay
                    drive = BUF.output_resistance
            return t_in

        unbuffered = exact_staged_delay([])
        buffered = exact_staged_delay(result.buffer_nodes)
        assert buffered < unbuffered


class TestDeepWires:
    def test_no_recursion_limit_on_long_lines(self):
        """The DP is iterative: a 3000-node wire (deeper than Python's
        default recursion limit) optimizes fine."""
        tree = rc_line(3000, 50.0, 20e-15, prefix="w")
        sinks = [BufferSink("w3000", 15e-15)]
        result = insert_buffers(tree, sinks, BUF, 250.0)
        assert len(result.buffer_nodes) > 100
        assert result.improvement > 0
