"""Tests for buffer-library (multi-type) van Ginneken insertion."""

import itertools

import pytest

from repro._exceptions import ValidationError
from repro.circuit import rc_line
from repro.opt import BufferSink, BufferType, insert_buffers
from repro.opt.multibuffer import (
    assigned_stage_delays,
    insert_buffers_multi,
)

SMALL = BufferType("X1", input_capacitance=6e-15,
                   output_resistance=220.0, intrinsic_delay=18e-12)
BIG = BufferType("X4", input_capacitance=20e-15,
                 output_resistance=60.0, intrinsic_delay=30e-12)


def wire(n=20):
    return rc_line(n, 90.0, 45e-15, prefix="w")


class TestAgainstSingleType:
    def test_one_type_library_matches_single_dp(self):
        tree = wire()
        sinks = [BufferSink("w20", 18e-15)]
        single = insert_buffers(tree, sinks, SMALL, 260.0)
        multi = insert_buffers_multi(tree, sinks, [SMALL], 260.0)
        assert multi.required_at_driver == pytest.approx(
            single.required_at_driver, rel=1e-12
        )
        assert set(multi.assignments) == set(single.buffer_nodes)
        assert all(b.name == "X1" for b in multi.assignments.values())

    def test_two_types_never_worse_than_either_alone(self):
        tree = wire()
        sinks = [BufferSink("w20", 18e-15)]
        multi = insert_buffers_multi(tree, sinks, [SMALL, BIG], 260.0)
        for single_type in (SMALL, BIG):
            single = insert_buffers(tree, sinks, single_type, 260.0)
            assert multi.required_at_driver >= \
                single.required_at_driver - 1e-18

    def test_unbuffered_baselines_agree(self):
        tree = wire()
        sinks = [BufferSink("w20", 18e-15)]
        single = insert_buffers(tree, sinks, SMALL, 260.0)
        multi = insert_buffers_multi(tree, sinks, [SMALL, BIG], 260.0)
        assert multi.unbuffered_required == pytest.approx(
            single.unbuffered_required, rel=1e-12
        )


class TestOptimality:
    def test_matches_enumeration_over_types_and_positions(self):
        tree = rc_line(5, 160.0, 70e-15, prefix="w")
        sinks = [BufferSink("w5", 20e-15)]
        result = insert_buffers_multi(tree, sinks, [SMALL, BIG], 420.0)

        best = None
        nodes = list(tree.node_names)
        for size in range(0, 3):
            for combo in itertools.combinations(nodes, size):
                for types in itertools.product([SMALL, BIG], repeat=size):
                    assignment = dict(zip(combo, types))
                    arrival = assigned_stage_delays(
                        tree, sinks, assignment, 420.0
                    )
                    delay = arrival["w5"]
                    if best is None or delay < best[0]:
                        best = (delay, assignment)
        assert -result.required_at_driver == pytest.approx(
            best[0], rel=1e-12
        )
        assert {n: b.name for n, b in result.assignments.items()} == \
            {n: b.name for n, b in best[1].items()}

    def test_dp_matches_typed_stage_reevaluation(self):
        tree = wire()
        sinks = [BufferSink("w20", 18e-15)]
        result = insert_buffers_multi(tree, sinks, [SMALL, BIG], 260.0)
        arrival = assigned_stage_delays(
            tree, sinks, result.assignments, 260.0
        )
        assert -result.required_at_driver == pytest.approx(
            arrival["w20"], rel=1e-12
        )


class TestTypeSelection:
    def test_strong_driver_segment_prefers_big_buffer_downstream(self):
        """On a long wire the optimizer uses the big type somewhere (its
        drive strength pays for its input cap)."""
        tree = wire(30)
        sinks = [BufferSink("w30", 18e-15)]
        result = insert_buffers_multi(tree, sinks, [SMALL, BIG], 260.0)
        used = {b.name for b in result.assignments.values()}
        assert "X4" in used

    def test_light_wire_prefers_no_or_small_buffer(self):
        tree = rc_line(2, 30.0, 3e-15, prefix="w")
        sinks = [BufferSink("w2", 4e-15)]
        result = insert_buffers_multi(tree, sinks, [SMALL, BIG], 120.0)
        assert all(b.name != "X4" for b in result.assignments.values())


class TestValidation:
    def test_empty_library(self):
        with pytest.raises(ValidationError):
            insert_buffers_multi(wire(), [BufferSink("w20", 1e-15)], [],
                                 260.0)

    def test_duplicate_type_names(self):
        dup = BufferType("X1", 5e-15, 100.0)
        with pytest.raises(ValidationError):
            insert_buffers_multi(
                wire(), [BufferSink("w20", 1e-15)], [SMALL, dup], 260.0
            )

    def test_standard_checks(self):
        tree = wire()
        with pytest.raises(ValidationError):
            insert_buffers_multi(tree, [], [SMALL], 260.0)
        with pytest.raises(ValidationError):
            insert_buffers_multi(
                tree, [BufferSink("ghost", 1e-15)], [SMALL], 260.0
            )
        with pytest.raises(ValidationError):
            assigned_stage_delays(
                tree, [BufferSink("w20", 1e-15)], {"ghost": SMALL}, 260.0
            )
