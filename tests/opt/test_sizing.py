"""Unit tests for Elmore-driven wire sizing."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError, ValidationError
from repro.opt import SizableSegment, SizingProblem, size_wires


def line_problem(n=6, weight_node=None):
    segments = [
        SizableSegment(
            parent="drv" if k == 0 else f"s{k}",
            child=f"s{k + 1}",
            unit_resistance=200.0,
            area_capacitance=30e-15,
            fringe_capacitance=10e-15,
            min_width=0.5,
            max_width=8.0,
        )
        for k in range(n)
    ]
    sink = weight_node or f"s{n}"
    return SizingProblem(
        segments=segments,
        driver_resistance=250.0,
        sink_weights={sink: 1.0},
        sink_loads={f"s{n}": 20e-15},
    )


class TestProblemConstruction:
    def test_build_tree(self):
        problem = line_problem(3)
        tree = problem.build_tree([1.0, 1.0, 1.0])
        assert tree.num_nodes == 4  # drv + 3 segments
        tree.validate()

    def test_width_changes_elements(self):
        problem = line_problem(1)
        narrow = problem.build_tree([0.5])
        wide = problem.build_tree([4.0])
        assert narrow.node("s1").resistance > wide.node("s1").resistance
        assert narrow.total_capacitance() < wide.total_capacitance()

    def test_objective_positive(self):
        problem = line_problem(3)
        assert problem.objective([1.0, 1.0, 1.0]) > 0.0

    def test_segment_validation(self):
        with pytest.raises(ValidationError):
            SizableSegment("a", "b", 0.0, 1e-15)
        with pytest.raises(ValidationError):
            SizableSegment("a", "b", 1.0, -1e-15)
        with pytest.raises(ValidationError):
            SizableSegment("a", "b", 1.0, 1e-15, min_width=2.0,
                           max_width=1.0)

    def test_problem_validation(self):
        segs = [SizableSegment("drv", "s1", 1.0, 1e-15)]
        with pytest.raises(ValidationError):
            SizingProblem(segs, 0.0, {"s1": 1.0}, {})
        with pytest.raises(ValidationError):
            SizingProblem(segs, 100.0, {}, {})
        with pytest.raises(ValidationError):
            SizingProblem(segs, 100.0, {"s1": -1.0}, {})
        with pytest.raises(ValidationError):
            SizingProblem([], 100.0, {"s1": 1.0}, {})

    def test_disconnected_segments_rejected(self):
        segs = [SizableSegment("ghost", "s1", 1.0, 1e-15)]
        problem = SizingProblem(segs, 100.0, {"s1": 1.0}, {})
        with pytest.raises(ValidationError):
            problem.build_tree([1.0])

    def test_unknown_sink_rejected(self):
        segs = [SizableSegment("drv", "s1", 1.0, 1e-15)]
        problem = SizingProblem(segs, 100.0, {"zz": 1.0}, {})
        with pytest.raises(ValidationError):
            problem.build_tree([1.0])

    def test_width_vector_length_checked(self):
        problem = line_problem(3)
        with pytest.raises(AnalysisError):
            problem.build_tree([1.0])


class TestSizeWires:
    def test_improves_over_min_width(self):
        problem = line_problem(6)
        result = size_wires(problem)
        assert result.converged
        assert result.objective < result.initial_objective
        assert result.improvement > 0.05

    def test_result_within_box(self):
        problem = line_problem(6)
        result = size_wires(problem)
        for w, seg in zip(result.widths, problem.segments):
            assert seg.min_width <= w <= seg.max_width

    def test_tapering(self):
        """Optimal line widths are nonincreasing toward the sink (the
        classic wire-tapering result under the Elmore model)."""
        problem = line_problem(8)
        result = size_wires(problem)
        interior = result.widths[
            (result.widths > 0.5 + 1e-6) & (result.widths < 8.0 - 1e-6)
        ]
        widths = result.widths
        assert np.all(np.diff(widths) <= 1e-6)

    def test_matches_scipy_reference(self):
        """Coordinate descent lands on the same optimum as a generic
        bounded optimizer."""
        import scipy.optimize
        problem = line_problem(4)
        result = size_wires(problem, max_sweeps=200, tolerance=1e-14)
        # Rescale to O(1) so the generic optimizer's tolerances behave.
        scale = 1.0 / problem.objective(np.full(4, 1.0))
        reference = scipy.optimize.minimize(
            lambda w: scale * problem.objective(w),
            x0=np.full(4, 1.0),
            bounds=[(0.5, 8.0)] * 4,
            method="L-BFGS-B",
            options={"ftol": 1e-14, "gtol": 1e-10},
        )
        assert result.objective == pytest.approx(
            reference.fun / scale, rel=1e-5
        )

    def test_local_refinement_never_worse(self):
        problem = line_problem(5)
        from_min = size_wires(problem)
        from_custom = size_wires(
            problem, initial_widths=[2.0, 2.0, 2.0, 2.0, 2.0]
        )
        assert from_custom.objective == pytest.approx(
            from_min.objective, rel=1e-6
        )

    def test_initial_width_validation(self):
        problem = line_problem(3)
        with pytest.raises(AnalysisError):
            size_wires(problem, initial_widths=[1.0])
        with pytest.raises(AnalysisError):
            size_wires(problem, initial_widths=[0.1, 1.0, 1.0])

    def test_multi_sink_weighting(self):
        """Weighting one branch's sink shifts width toward that branch."""
        def branch_problem(weight_a, weight_b):
            segments = [
                SizableSegment("drv", "hub", 200.0, 30e-15, 10e-15),
                SizableSegment("hub", "a", 200.0, 30e-15, 10e-15),
                SizableSegment("hub", "b", 200.0, 30e-15, 10e-15),
            ]
            return SizingProblem(
                segments=segments,
                driver_resistance=250.0,
                sink_weights={"a": weight_a, "b": weight_b},
                sink_loads={"a": 20e-15, "b": 20e-15},
            )

        favor_a = size_wires(branch_problem(10.0, 0.1))
        favor_b = size_wires(branch_problem(0.1, 10.0))
        # Segment 1 feeds "a", segment 2 feeds "b".
        assert favor_a.widths[1] >= favor_b.widths[1]
        assert favor_b.widths[2] >= favor_a.widths[2]

    def test_exact_delay_improves_too(self):
        """The Elmore-optimized widths also improve the exact delay."""
        from repro.analysis import measure_delay
        problem = line_problem(6)
        result = size_wires(problem)
        t_min = problem.build_tree([s.min_width for s in problem.segments])
        t_opt = problem.build_tree(result.widths)
        sink = "s6"
        assert measure_delay(t_opt, sink) < measure_delay(t_min, sink)
