"""Tests for slew repair by repeater insertion."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError, ValidationError
from repro.analysis import ExactAnalysis, output_rise_time
from repro.circuit import RCTree, rc_line
from repro.opt import BufferSink, BufferType
from repro.opt.slew_repair import repair_slews, stage_sigmas

BUF = BufferType("REP", input_capacitance=12e-15,
                 output_resistance=90.0, intrinsic_delay=25e-12)


def long_wire(n=20):
    return rc_line(n, 100.0, 50e-15, prefix="w")


class TestStageSigmas:
    def test_unbuffered_matches_flat_moments(self):
        """With no buffers the sigma is just sqrt(mu_2) of the whole net
        including the driver resistance."""
        tree = long_wire(8)
        sinks = [BufferSink("w8", 10e-15)]
        sigmas = stage_sigmas(tree, sinks, BUF, 250.0, [])
        flat = RCTree("in")
        flat.add_node("drv#", "in", 250.0, 0.0)
        parent = "drv#"
        for name in tree.node_names:
            view = tree.node(name)
            flat.add_node(name, parent, view.resistance, view.capacitance)
            parent = name
        flat.add_load("w8", 10e-15)
        from repro.core import transfer_moments
        expected = transfer_moments(flat, 2).sigma("w8")
        assert sigmas["w8"] == pytest.approx(expected, rel=1e-12)

    def test_input_sigma_adds_in_quadrature(self):
        tree = long_wire(8)
        sinks = [BufferSink("w8", 10e-15)]
        s0 = stage_sigmas(tree, sinks, BUF, 250.0, [])["w8"]
        s_in = 0.5e-9
        s1 = stage_sigmas(tree, sinks, BUF, 250.0, [], input_sigma=s_in)
        assert s1["w8"] == pytest.approx(np.sqrt(s0**2 + s_in**2),
                                         rel=1e-12)

    def test_buffering_reduces_sigma(self):
        tree = long_wire(20)
        sinks = [BufferSink("w20", 10e-15)]
        unbuffered = stage_sigmas(tree, sinks, BUF, 250.0, [])["w20"]
        buffered = stage_sigmas(tree, sinks, BUF, 250.0, ["w10"])["w20"]
        assert buffered < unbuffered


class TestRepairSlews:
    def test_no_repair_needed(self):
        tree = rc_line(2, 20.0, 2e-15, prefix="w")
        sinks = [BufferSink("w2", 5e-15)]
        result = repair_slews(tree, sinks, BUF, 100.0, sigma_limit=1e-9)
        assert result.buffer_nodes == ()
        assert result.worst_sigma <= 1e-9
        assert result.iterations == 1

    def test_long_wire_gets_repaired(self):
        tree = long_wire(20)
        sinks = [BufferSink("w20", 10e-15)]
        before = stage_sigmas(tree, sinks, BUF, 250.0, [])["w20"]
        limit = before / 3.0
        result = repair_slews(tree, sinks, BUF, 250.0, sigma_limit=limit)
        assert result.buffer_nodes
        assert result.worst_sigma <= limit * (1 + 1e-9)

    def test_tighter_limit_needs_more_buffers(self):
        tree = long_wire(30)
        sinks = [BufferSink("w30", 10e-15)]
        base = stage_sigmas(tree, sinks, BUF, 250.0, [])["w30"]
        loose = repair_slews(tree, sinks, BUF, 250.0, sigma_limit=base / 2)
        tight = repair_slews(tree, sinks, BUF, 250.0, sigma_limit=base / 5)
        assert len(tight.buffer_nodes) > len(loose.buffer_nodes)

    def test_branch_repair(self):
        tree = RCTree("in")
        tree.add_node("trunk", "in", 80.0, 20e-15)
        for branch in ("a", "b"):
            parent = "trunk"
            for k in range(10):
                name = f"{branch}{k}"
                tree.add_node(name, parent, 150.0, 60e-15)
                parent = name
        sinks = [BufferSink("a9", 10e-15), BufferSink("b9", 10e-15)]
        base = max(stage_sigmas(tree, sinks, BUF, 200.0, []).values())
        result = repair_slews(tree, sinks, BUF, 200.0,
                              sigma_limit=base / 2.5)
        assert result.worst_sigma <= base / 2.5 * (1 + 1e-9)
        for sigma in result.sink_sigmas.values():
            assert sigma <= base / 2.5 * (1 + 1e-9)

    def test_unachievable_limit_raises(self):
        tree = long_wire(5)
        sinks = [BufferSink("w5", 10e-15)]
        with pytest.raises(AnalysisError):
            repair_slews(tree, sinks, BUF, 250.0, sigma_limit=1e-15)

    def test_validation(self):
        tree = long_wire(5)
        sinks = [BufferSink("w5", 10e-15)]
        with pytest.raises(ValidationError):
            repair_slews(tree, sinks, BUF, 250.0, sigma_limit=0.0)
        with pytest.raises(ValidationError):
            repair_slews(tree, sinks, BUF, 250.0, sigma_limit=1e-9,
                         input_sigma=-1.0)
        with pytest.raises(ValidationError):
            repair_slews(tree, [BufferSink("ghost", 1e-15)], BUF, 250.0,
                         sigma_limit=1e-9)

    def test_measured_rise_time_improves(self):
        """The sigma-driven repair improves the *measured* 10-90% rise
        time of the repaired net's final stage."""
        tree = long_wire(20)
        sinks = [BufferSink("w20", 10e-15)]
        base = stage_sigmas(tree, sinks, BUF, 250.0, [])["w20"]
        result = repair_slews(tree, sinks, BUF, 250.0,
                              sigma_limit=base / 3.0)

        def final_stage_rise(buffer_nodes):
            # Build the last stage (deepest buffer to the sink).
            order = {n: k for k, n in enumerate(tree.node_names)}
            start = max(buffer_nodes, key=order.get) if buffer_nodes \
                else None
            stage = RCTree("in")
            drive = BUF.output_resistance if start else 250.0
            stage.add_node("drv#", "in", drive, 0.0)
            names = list(tree.node_names)
            first = names.index(start) + 1 if start else 0
            parent = "drv#"
            for name in names[first:]:
                view = tree.node(name)
                stage.add_node(name, parent, view.resistance,
                               view.capacitance)
                parent = name
            stage.add_load("w20", 10e-15)
            return output_rise_time(stage, "w20")

        assert final_stage_rise(result.buffer_nodes) < \
            final_stage_rise(())
