"""Shared fixtures for the parallel-engine tests.

The shm transport owns real ``/dev/shm`` segments and a process-global
warm worker pool; a test that leaked either would poison every test
after it.  The autouse gate below tears both down after *every* test in
this package and fails loudly if any library-owned segment survived —
the "no /dev/shm leaks after any test" contract of the transport.
"""

import pytest

import repro.parallel as parallel
from repro.parallel.shm import active_segment_names


@pytest.fixture(autouse=True)
def shm_leak_gate():
    yield
    parallel.shutdown()
    leaked = active_segment_names()
    assert leaked == (), (
        f"shared-memory segments leaked past teardown: {leaked}"
    )
