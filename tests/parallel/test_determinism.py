"""Determinism gates: sharded results are bit-identical to serial.

The contract under test (docs/api.md, "Parallel backend"): the shard
plan is a pure function of the workload — never of the worker count —
and per-shard randomness comes from ``SeedSequence.spawn`` children, so
``jobs=1`` (serial backend) and any ``jobs>=2`` (process pool) reduce to
the **same bits**, not merely statistically equivalent output.
"""

import numpy as np

from repro.core.variation import (
    VariationModel,
    monte_carlo_delay_matrix,
    monte_carlo_elmore,
)
from repro.core.verification import verify_corpus, verify_tree
from repro.sta import analyze
from repro.workloads import fig1_tree, mixed_corpus, random_design

MODEL = VariationModel(resistance_sigma=0.1, capacitance_sigma=0.08)


class TestMonteCarloBitIdentity:
    def test_matrix_serial_vs_two_shards(self, fig1):
        a = monte_carlo_delay_matrix(fig1, MODEL, 257, seed=11, jobs=1)
        b = monte_carlo_delay_matrix(fig1, MODEL, 257, seed=11, jobs=2)
        assert a.shape == b.shape == (257, fig1.num_nodes)
        # Bitwise, not approximate: exact array equality.
        np.testing.assert_array_equal(a, b)

    def test_matrix_more_workers_than_shards(self, fig1):
        a = monte_carlo_delay_matrix(fig1, MODEL, 64, seed=3, jobs=1)
        b = monte_carlo_delay_matrix(fig1, MODEL, 64, seed=3, jobs=4)
        np.testing.assert_array_equal(a, b)

    def test_matrix_explicit_shard_size(self, fig1):
        # Same shard_size => same plan => same bits, for any jobs.
        a = monte_carlo_delay_matrix(
            fig1, MODEL, 100, seed=5, jobs=1, shard_size=17
        )
        b = monte_carlo_delay_matrix(
            fig1, MODEL, 100, seed=5, jobs=3, shard_size=17
        )
        np.testing.assert_array_equal(a, b)

    def test_method_parallel_single_node(self, fig1):
        node = fig1.node_names[-1]
        a = monte_carlo_elmore(
            fig1, node, MODEL, samples=123, seed=9, method="parallel",
            jobs=1,
        )
        b = monte_carlo_elmore(
            fig1, node, MODEL, samples=123, seed=9, method="parallel",
            jobs=2,
        )
        np.testing.assert_array_equal(a, b)


class TestVerificationEquality:
    def test_verify_tree_jobs_invariant(self, fig1):
        legacy = verify_tree(fig1, samples=801)
        serial = verify_tree(fig1, samples=801, jobs=1)
        sharded = verify_tree(fig1, samples=801, jobs=2)
        assert legacy == serial == sharded
        assert sharded.all_hold

    def test_verify_corpus_jobs_invariant(self):
        corpus = mixed_corpus(seed=7)[:4]
        serial = verify_corpus(corpus, samples=601, jobs=1)
        sharded = verify_corpus(corpus, samples=601, jobs=2)
        assert serial == sharded
        assert all(v.all_hold for v in serial)


class TestStaEquality:
    def test_arrival_and_slew_equal(self):
        design = random_design(layers=3, width=5, seed=3)
        whole = analyze(design)
        sharded = analyze(design, jobs=2)
        # Dict equality is float equality per pin — bitwise arrival and
        # slew agreement between the whole-forest batched sweep and the
        # sharded sub-forest sweeps.
        assert whole.arrival == sharded.arrival
        assert whole.slew == sharded.slew
        assert whole.critical_delay == sharded.critical_delay
        assert whole.critical_output == sharded.critical_output


class TestShmBackendBitIdentity:
    """The shm transport is pinned to the same bits as every other
    backend — for the zero-copy Monte-Carlo workload and for the
    pickled-payload workloads that merely ride the warm pool."""

    def test_matrix_shm_vs_serial_and_process(self, fig1):
        serial = monte_carlo_delay_matrix(fig1, MODEL, 257, seed=11)
        process = monte_carlo_delay_matrix(
            fig1, MODEL, 257, seed=11, jobs=2, backend="process"
        )
        shm = monte_carlo_delay_matrix(
            fig1, MODEL, 257, seed=11, jobs=2, backend="shm"
        )
        np.testing.assert_array_equal(serial, process)
        np.testing.assert_array_equal(serial, shm)

    def test_matrix_shm_serial_inline(self, fig1):
        # jobs=1 routes the shm shard task through the serial backend:
        # the parent attaches its own segments and fills the out block
        # in-process, still bit-identical.
        serial = monte_carlo_delay_matrix(fig1, MODEL, 64, seed=3)
        shm = monte_carlo_delay_matrix(
            fig1, MODEL, 64, seed=3, jobs=1, backend="shm"
        )
        np.testing.assert_array_equal(serial, shm)

    def test_verify_tree_backend_invariant(self, fig1):
        serial = verify_tree(fig1, samples=801, jobs=1)
        shm = verify_tree(fig1, samples=801, jobs=2, backend="shm")
        assert serial == shm

    def test_sta_backend_invariant(self):
        design = random_design(layers=3, width=5, seed=3)
        whole = analyze(design)
        shm = analyze(design, jobs=2, backend="shm")
        assert whole.arrival == shm.arrival
        assert whole.slew == shm.slew
        assert whole.critical_delay == shm.critical_delay
