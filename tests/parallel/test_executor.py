"""Executor semantics: ordering, validation, robustness, metrics.

The worker-failure tests use the fork start method's property that a
child inherits this module's ``_PARENT`` pid: a task can behave
differently in a pool worker (die / hang) than in the parent process,
which is exactly what the retry-then-degrade ladder must survive.
"""

import os
import time

import pytest

from repro._exceptions import ValidationError
from repro.obs.metrics import counter
from repro.parallel import available_backends, resolve_jobs, run_sharded

_PARENT = os.getpid()


# ---------------------------------------------------------------------------
# Module-level tasks (the process backend pickles them by reference).

def _square(x):
    return x * x


def _raise_value_error(x):
    raise ValueError(f"task bug on payload {x!r}")


def _die_in_worker(x):
    """Kill the hosting worker process; succeed in the parent."""
    if os.getpid() != _PARENT:
        os._exit(1)
    return x + 100


def _hang_in_worker(payload):
    """Sleep far past the test timeout in a worker; instant in parent."""
    duration, value = payload
    if os.getpid() != _PARENT:
        time.sleep(duration)
    return value


# ---------------------------------------------------------------------------

class TestResolveJobs:
    def test_serial_aliases(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_parallel_values_pass_through(self):
        assert resolve_jobs(2) == 2
        assert resolve_jobs(16) == 16

    def test_validation(self):
        for bad in (-1, 2.5, "4", True):
            with pytest.raises(ValidationError):
                resolve_jobs(bad)


def test_available_backends_always_has_serial():
    backends = available_backends()
    assert "serial" in backends
    # Linux CI always offers fork/spawn.
    assert "process" in backends


class TestSerialBackend:
    def test_results_in_payload_order(self):
        assert run_sharded(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_payloads(self):
        assert run_sharded(_square, []) == []

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="task bug"):
            run_sharded(_raise_value_error, [1])

    def test_counts_shards(self):
        before = counter("parallel_shards_total").value
        run_sharded(_square, [1, 2, 3], jobs=1)
        assert counter("parallel_shards_total").value == before + 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_sharded(_square, [1], timeout=0.0)
        with pytest.raises(ValidationError):
            run_sharded(_square, [1], retries=-1)


class TestProcessBackend:
    def test_results_in_payload_order(self):
        assert run_sharded(_square, list(range(8)), jobs=2) == \
            [x * x for x in range(8)]

    def test_single_payload_collapses_to_serial(self):
        # min(jobs, len(payloads)) == 1 -> no pool is ever created, so
        # the task runs in the parent (where _die_in_worker succeeds).
        assert run_sharded(_die_in_worker, [1], jobs=4) == [101]

    def test_task_exception_propagates(self):
        # A genuine task bug fails the run; it is not retried into
        # oblivion or silently degraded away.
        with pytest.raises(ValueError, match="task bug"):
            run_sharded(_raise_value_error, [1, 2], jobs=2)

    def test_killed_worker_retries_then_degrades(self):
        """A shard whose worker dies is retried on a fresh pool, and
        once attempts are exhausted it degrades to in-process execution
        -- the run still succeeds, with results in order."""
        retries_before = counter("parallel_retries_total").value
        degraded_before = counter("parallel_degraded_total").value

        out = run_sharded(_die_in_worker, [1, 2, 3], jobs=2, retries=1)

        assert out == [101, 102, 103]
        assert counter("parallel_retries_total").value > retries_before
        assert counter("parallel_degraded_total").value >= \
            degraded_before + 3

    def test_hung_worker_times_out_then_degrades(self):
        """A shard hung in a worker trips the per-shard timeout, the
        pool is recycled, and after retries the shard completes
        in-process."""
        timeouts_before = counter("parallel_timeouts_total").value

        start = time.perf_counter()
        out = run_sharded(
            _hang_in_worker,
            [(30.0, "a"), (30.0, "b")],
            jobs=2, timeout=0.5, retries=1,
        )
        elapsed = time.perf_counter() - start

        assert out == ["a", "b"]
        assert counter("parallel_timeouts_total").value > timeouts_before
        # Two attempt waves at <= ~0.5 s each plus inline completion;
        # nowhere near the 30 s worker sleep.
        assert elapsed < 20.0

    def test_zero_retries_degrades_immediately(self):
        degraded_before = counter("parallel_degraded_total").value
        out = run_sharded(_die_in_worker, [5, 6], jobs=2, retries=0)
        assert out == [105, 106]
        assert counter("parallel_degraded_total").value == \
            degraded_before + 2

    def test_shard_histogram_records_durations(self):
        from repro.obs.metrics import histogram
        hist = histogram("parallel_shard_seconds")
        before = hist.count
        run_sharded(_square, list(range(4)), jobs=2)
        assert hist.count == before + 4


def _hang_or_raise(payload):
    """Hang in a worker for 'hang' payloads; raise for 'raise' ones."""
    kind, duration, value = payload
    if kind == "raise":
        raise ValueError(f"task bug on payload {value!r}")
    if os.getpid() != _PARENT:
        time.sleep(duration)
    return value


class TestTaskErrorsNeverRetry:
    """Deterministic task exceptions propagate on the FIRST raise.

    Regression for the retry path: only infrastructure failures
    (``BrokenProcessPool``, timeouts) may consume retry attempts; a bug
    in the task itself would fail identically on every attempt, so
    re-running it just multiplies the wasted work and buries the
    traceback under retry noise.
    """

    def test_task_error_not_retried(self):
        retries_before = counter("parallel_retries_total").value
        with pytest.raises(ValueError, match="task bug"):
            run_sharded(_raise_value_error, [1, 2, 3, 4], jobs=2,
                        retries=3)
        assert counter("parallel_retries_total").value == retries_before

    def test_task_error_beats_timeout_sweep(self):
        """A shard that hangs must not mask a sibling's genuine bug:
        the post-timeout sweep still propagates the task exception
        instead of retrying (and eventually degrading) it."""
        retries_before = counter("parallel_retries_total").value
        with pytest.raises(ValueError, match="task bug"):
            run_sharded(
                _hang_or_raise,
                [("hang", 30.0, "a"), ("raise", 0.0, "b")],
                jobs=2, timeout=0.5, retries=3,
            )
        assert counter("parallel_retries_total").value == retries_before

    def test_task_error_on_warm_pool_not_retried(self):
        retries_before = counter("parallel_retries_total").value
        with pytest.raises(ValueError, match="task bug"):
            run_sharded(_raise_value_error, [1, 2], jobs=2, retries=3,
                        backend="shm")
        assert counter("parallel_retries_total").value == retries_before
