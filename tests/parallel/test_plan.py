"""Unit tests for the deterministic shard planner."""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.parallel import (
    DEFAULT_MAX_SHARDS,
    Shard,
    plan_shards,
    spawn_shard_seeds,
)


class TestPlanShards:
    def test_covers_workload_exactly(self):
        shards = plan_shards(1000)
        assert shards[0].start == 0
        assert shards[-1].stop == 1000
        for prev, cur in zip(shards, shards[1:]):
            assert cur.start == prev.stop
        assert sum(s.size for s in shards) == 1000
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_default_split_caps_shard_count(self):
        assert len(plan_shards(10_000)) <= DEFAULT_MAX_SHARDS
        assert len(plan_shards(DEFAULT_MAX_SHARDS * 7)) == DEFAULT_MAX_SHARDS

    def test_small_workload_one_item_per_shard(self):
        shards = plan_shards(5)
        assert len(shards) == 5
        assert all(s.size == 1 for s in shards)

    def test_explicit_shard_size(self):
        shards = plan_shards(10, shard_size=4)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 8), (8, 10)]

    def test_plan_is_pure_function_of_inputs(self):
        # The determinism contract: the plan never depends on anything
        # but (total, shard_size, max_shards).
        assert plan_shards(777) == plan_shards(777)
        assert plan_shards(777, shard_size=13) == plan_shards(777, shard_size=13)

    def test_zero_total_is_empty(self):
        assert plan_shards(0) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_shards(-1)
        with pytest.raises(ValidationError):
            plan_shards(2.5)
        with pytest.raises(ValidationError):
            plan_shards(True)
        with pytest.raises(ValidationError):
            plan_shards(10, shard_size=0)
        with pytest.raises(ValidationError):
            plan_shards(10, shard_size=1.5)
        with pytest.raises(ValidationError):
            plan_shards(10, max_shards=0)
        with pytest.raises(ValidationError):
            Shard(index=0, start=5, stop=2)

    def test_numpy_integers_accepted(self):
        shards = plan_shards(np.int64(10), shard_size=np.int64(3))
        assert sum(s.size for s in shards) == 10


class TestSpawnShardSeeds:
    def test_shard_k_always_gets_child_k(self):
        a = spawn_shard_seeds(1995, 8)
        b = spawn_shard_seeds(1995, 8)
        for sa, sb in zip(a, b):
            ra = np.random.default_rng(sa).standard_normal(16)
            rb = np.random.default_rng(sb).standard_normal(16)
            np.testing.assert_array_equal(ra, rb)

    def test_prefix_stability(self):
        # Asking for more shards must not change the earlier streams —
        # that's what makes shard plans extendable without reseeding.
        short = spawn_shard_seeds(7, 3)
        long = spawn_shard_seeds(7, 6)
        for ss, sl in zip(short, long):
            np.testing.assert_array_equal(
                np.random.default_rng(ss).standard_normal(8),
                np.random.default_rng(sl).standard_normal(8),
            )

    def test_streams_are_distinct(self):
        seeds = spawn_shard_seeds(0, 4)
        draws = [
            tuple(np.random.default_rng(s).standard_normal(4))
            for s in seeds
        ]
        assert len(set(draws)) == 4

    def test_seedsequence_root_accepted(self):
        root = np.random.SeedSequence(42)
        assert len(spawn_shard_seeds(root, 2)) == 2

    def test_zero_count(self):
        assert spawn_shard_seeds(0, 0) == []
        with pytest.raises(ValidationError):
            spawn_shard_seeds(0, -1)
