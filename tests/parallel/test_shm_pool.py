"""Fault injection for the warm pool and the shm backend.

Each scenario exercises one failure the transport must survive without
failing the run or leaking a segment:

* a worker killed mid-call — the wave retries on recycled workers and
  degrades to in-process execution when retries run out;
* a shard hung past its timeout — counted, recycled, degraded;
* a segment unlinked under the workers — the attach raises
  :class:`ShmError` in the worker, the workload layer falls back to the
  fork transport, and the results are still bit-identical.

The ``_PARENT`` pid trick mirrors ``test_executor.py``: fork-context
workers inherit this module's globals, so a task can misbehave only
when it runs in a pool worker and succeed when run inline.
"""

import os
import time

import numpy as np
import pytest

from repro.circuit import balanced_tree
from repro.core import variation
from repro.core.variation import VariationModel, monte_carlo_delay_matrix
from repro.obs.metrics import counter
from repro.parallel import (
    WarmPool,
    get_warm_pool,
    lease_warm_pool,
    run_sharded,
    shm_available,
    shutdown_warm_pool,
)
from repro.parallel.shm import active_segment_names

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no shared-memory support on this host"
)

_PARENT = os.getpid()


def _square(x):
    return x * x


def _die_in_worker(x):
    if os.getpid() != _PARENT:
        os._exit(1)
    return x + 100


def _hang_in_worker(payload):
    duration, value = payload
    if os.getpid() != _PARENT:
        time.sleep(duration)
    return value


#: The genuine shard task, captured before any test patches the module
#: global (the wrappers below must not recurse into themselves when a
#: forked child inherits the patched module state).
_REAL_MC_TASK = variation._mc_shm_shard_task


def _dying_mc_task(payload):
    """Kill the hosting worker; run the real shard task in the parent."""
    if os.getpid() != _PARENT:
        os._exit(1)
    return _REAL_MC_TASK(payload)


def _hanging_mc_task(payload):
    """Hang in a worker; run the real shard task in the parent."""
    if os.getpid() != _PARENT:
        time.sleep(30.0)
    return _REAL_MC_TASK(payload)


def _tree():
    return balanced_tree(4, 2, 25.0, 8e-15, driver_resistance=120.0,
                         leaf_load=4e-15)


MODEL = VariationModel(resistance_sigma=0.1, capacitance_sigma=0.08)


class TestWarmPool:
    def test_fork_once_then_reuse(self):
        forks_before = counter("parallel_pool_forks_total").value
        reuses_before = counter("parallel_pool_reuses_total").value
        out1 = run_sharded(_square, [1, 2, 3, 4], jobs=2, backend="shm")
        out2 = run_sharded(_square, [5, 6, 7, 8], jobs=2, backend="shm")
        assert out1 == [1, 4, 9, 16]
        assert out2 == [25, 36, 49, 64]
        assert counter("parallel_pool_forks_total").value == \
            forks_before + 1
        assert counter("parallel_pool_reuses_total").value > reuses_before

    def test_resize_recycles_workers(self):
        pool2 = get_warm_pool(2)
        pool2.executor()
        assert pool2.is_warm
        pool3 = get_warm_pool(3)
        assert pool3 is not pool2
        assert not pool2.is_warm  # old workers were torn down
        shutdown_warm_pool()

    def test_shutdown_is_idempotent(self):
        pool = WarmPool(jobs=2)
        pool.executor()
        pool.shutdown()
        pool.shutdown()
        assert not pool.is_warm

    def test_killed_worker_recycles_then_degrades(self):
        recycles_before = counter("parallel_pool_recycles_total").value
        degraded_before = counter("parallel_degraded_total").value
        out = run_sharded(
            _die_in_worker, [1, 2, 3], jobs=2, retries=1, backend="shm"
        )
        assert out == [101, 102, 103]
        assert counter("parallel_pool_recycles_total").value > \
            recycles_before
        assert counter("parallel_degraded_total").value >= \
            degraded_before + 3

    def test_hung_worker_times_out_recycles_then_degrades(self):
        timeouts_before = counter("parallel_timeouts_total").value
        recycles_before = counter("parallel_pool_recycles_total").value
        start = time.perf_counter()
        out = run_sharded(
            _hang_in_worker, [(30.0, "a"), (30.0, "b")],
            jobs=2, timeout=0.5, retries=1, backend="shm",
        )
        assert out == ["a", "b"]
        assert time.perf_counter() - start < 20.0
        assert counter("parallel_timeouts_total").value > timeouts_before
        assert counter("parallel_pool_recycles_total").value > \
            recycles_before

    def test_next_run_after_failure_forks_fresh_workers(self):
        run_sharded(_die_in_worker, [1, 2], jobs=2, retries=0,
                    backend="shm")
        forks_before = counter("parallel_pool_forks_total").value
        assert run_sharded(_square, [2, 3], jobs=2, backend="shm") == \
            [4, 9]
        assert counter("parallel_pool_forks_total").value == \
            forks_before + 1

    def test_resize_with_lease_in_flight_keeps_old_pool_serving(self):
        """A resize must never yank workers from under a running wave:
        the leased pool keeps serving, and its last lease release (not
        the resize) performs the teardown."""
        pool2 = lease_warm_pool(2)
        pool2.executor()
        assert pool2.is_warm and pool2.leases == 1
        pool3 = get_warm_pool(3)  # concurrent run asks for a resize
        assert pool3 is not pool2
        assert pool2.is_warm  # in-flight run still has its workers
        # The old pool still *works* while leased-and-retired.
        assert pool2.executor().submit(_square, 5).result() == 25
        pool2.release_lease()  # last lease -> deferred teardown fires
        assert not pool2.is_warm
        shutdown_warm_pool()

    def test_shutdown_warm_pool_sweeps_leased_orphans(self):
        """shutdown_warm_pool (and hence atexit) must terminate retired
        pools whose leases were never released — no leaked workers."""
        pool2 = lease_warm_pool(2)
        pool2.executor()
        get_warm_pool(3)  # orphans pool2 (lease still held)
        shutdown_warm_pool()
        assert not pool2.is_warm
        pool2.release_lease()  # late release on a swept pool is benign
        assert not pool2.is_warm


class TestShmWorkloadFaults:
    def test_kill_worker_mid_call_still_bit_identical(self):
        """Workers dying under the shm Monte-Carlo sweep degrade the
        shards to in-process execution without changing a bit."""
        tree = _tree()
        serial = monte_carlo_delay_matrix(tree, MODEL, 60, seed=3)
        degraded_before = counter("parallel_degraded_total").value

        variation._mc_shm_shard_task = _dying_mc_task
        try:
            out = monte_carlo_delay_matrix(
                tree, MODEL, 60, seed=3, jobs=2, retries=0,
                backend="shm",
            )
        finally:
            variation._mc_shm_shard_task = _REAL_MC_TASK
        np.testing.assert_array_equal(out, serial)
        assert counter("parallel_degraded_total").value > degraded_before

    def test_unlink_under_worker_falls_back_to_fork(self):
        """Yanking the segments between publish and evaluation makes
        fresh workers raise ShmError on attach; the workload layer
        counts a fallback, reruns on the fork transport, and the result
        stays bit-identical."""
        tree = _tree()
        serial = monte_carlo_delay_matrix(tree, MODEL, 60, seed=5)
        out1 = monte_carlo_delay_matrix(
            tree, MODEL, 60, seed=5, jobs=2, backend="shm"
        )
        np.testing.assert_array_equal(out1, serial)

        # Cold workers (the warm attachments die with the old pool),
        # then unlink every published segment behind the workspace's
        # back — exactly what a hostile tmpwatch / namespace teardown
        # would do.
        shutdown_warm_pool()
        for name in active_segment_names():
            os.unlink(os.path.join("/dev/shm", name))
        fallbacks_before = counter("parallel_shm_fallback_total").value

        out2 = monte_carlo_delay_matrix(
            tree, MODEL, 60, seed=5, jobs=2, backend="shm"
        )
        np.testing.assert_array_equal(out2, serial)
        assert counter("parallel_shm_fallback_total").value == \
            fallbacks_before + 1

    def test_timeout_under_shm_sweep_still_bit_identical(self):
        tree = _tree()
        serial = monte_carlo_delay_matrix(tree, MODEL, 60, seed=9)
        timeouts_before = counter("parallel_timeouts_total").value

        variation._mc_shm_shard_task = _hanging_mc_task
        try:
            out = monte_carlo_delay_matrix(
                tree, MODEL, 60, seed=9, jobs=2, timeout=0.5,
                retries=0, backend="shm",
            )
        finally:
            variation._mc_shm_shard_task = _REAL_MC_TASK
        np.testing.assert_array_equal(out, serial)
        assert counter("parallel_timeouts_total").value > timeouts_before


class TestWarmRepublication:
    """Repeat shm sweeps on the *same* warm workers and workspace.

    Regression for the stale-attachment bug: changing ``samples``
    between calls resizes the shared ``out`` block; a warm worker (or
    the parent's own inline attach cache at ``jobs=1``) holding views
    of the old segment must re-attach, not silently write into a dead
    mapping while the parent reads the fresh uninitialized one.
    """

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_second_sweep_with_different_samples_stays_bit_identical(
        self, jobs
    ):
        tree = _tree()
        serial_small = monte_carlo_delay_matrix(tree, MODEL, 40, seed=11)
        serial_big = monte_carlo_delay_matrix(tree, MODEL, 90, seed=11)

        grown = monte_carlo_delay_matrix(
            tree, MODEL, 40, seed=11, jobs=jobs, backend="shm"
        )
        np.testing.assert_array_equal(grown, serial_small)
        # Same workspace, same warm workers, resized output block.
        regrown = monte_carlo_delay_matrix(
            tree, MODEL, 90, seed=11, jobs=jobs, backend="shm"
        )
        np.testing.assert_array_equal(regrown, serial_big)
        # And shrinking back reuses the warm path just as safely.
        shrunk = monte_carlo_delay_matrix(
            tree, MODEL, 40, seed=11, jobs=jobs, backend="shm"
        )
        np.testing.assert_array_equal(shrunk, serial_small)
