"""Property-based contracts of the shared-memory transport.

Randomized over trees, array shapes/dtypes/layouts, and worker counts:

* the shm backend returns **bit-identical** results to the serial
  backend for the Monte-Carlo delay-matrix workload;
* workspace descriptors round-trip dtype, shape, and strides *exactly*
  (including Fortran-order layouts) through publish -> pickle ->
  attach;
* segments are always unlinked — on clean close, on context-manager
  exit with an exception in flight, and after every property example
  (the package-level autouse gate re-checks after the test too).
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.variation import VariationModel, monte_carlo_delay_matrix
from repro.parallel import (
    ShmError,
    ShmWorkspace,
    attach_workspace,
    detach_all,
    shm_available,
)
from repro.parallel.shm import active_segment_names

from tests.properties.strategies import rc_trees

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no shared-memory support on this host"
)

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])

_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint8, np.complex128]
)
_SHAPES = st.lists(
    st.integers(min_value=1, max_value=7), min_size=1, max_size=3
).map(tuple)


@st.composite
def published_arrays(draw):
    """A random array in a random (C or Fortran) memory layout."""
    dtype = np.dtype(draw(_DTYPES))
    shape = draw(_SHAPES)
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    values = rng.integers(0, 100, size=shape)
    array = values.astype(dtype)
    if draw(st.booleans()):
        array = np.asfortranarray(array)
    return array


class TestDescriptorRoundTrip:
    @given(array=published_arrays())
    @settings(max_examples=40, **COMMON)
    def test_dtype_shape_strides_survive_exactly(self, array):
        with ShmWorkspace(tag="prop") as ws:
            spec = ws.put("a", array)
            assert spec.dtype == array.dtype.str
            assert spec.shape == array.shape
            assert spec.strides == array.strides
            # The descriptor travels pickled; the attached view must
            # reproduce the exact layout and bytes on the other side.
            descriptor = pickle.loads(pickle.dumps(ws.descriptor()))
            attached = attach_workspace(descriptor)
            view = attached.arrays["a"]
            assert view.dtype == array.dtype
            assert view.shape == array.shape
            assert view.strides == array.strides
            np.testing.assert_array_equal(view, array)
            detach_all()
        assert active_segment_names() == ()

    @given(array=published_arrays())
    @settings(max_examples=20, **COMMON)
    def test_republish_after_mutation_ships_new_bytes(self, array):
        with ShmWorkspace(tag="prop") as ws:
            ws.put("a", array)
            mutated = array.copy()
            mutated.flat[0] += 1
            ws.put("a", mutated)
            attached = attach_workspace(
                pickle.loads(pickle.dumps(ws.descriptor()))
            )
            np.testing.assert_array_equal(attached.arrays["a"], mutated)
            detach_all()
        assert active_segment_names() == ()


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        ws = ShmWorkspace(tag="life")
        for k in range(5):
            ws.put(f"b{k}", np.arange(10.0) * k)
        assert len(active_segment_names()) == 5
        ws.close()
        assert active_segment_names() == ()
        ws.close()  # idempotent

    def test_exception_in_context_still_unlinks(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ShmWorkspace(tag="boom") as ws:
                ws.put("x", np.ones(4))
                assert active_segment_names() != ()
                raise RuntimeError("boom")
        assert active_segment_names() == ()

    def test_put_after_close_raises(self):
        ws = ShmWorkspace(tag="closed")
        ws.close()
        with pytest.raises(ShmError, match="closed"):
            ws.put("x", np.ones(2))

    def test_attach_after_unlink_raises_shm_error(self):
        ws = ShmWorkspace(tag="gone")
        ws.put("x", np.ones(3))
        descriptor = ws.descriptor()
        ws.close()
        with pytest.raises(ShmError, match="gone"):
            attach_workspace(descriptor)

    def test_allocate_block_is_shared_with_attachments(self):
        with ShmWorkspace(tag="out") as ws:
            out = ws.allocate("out", (3, 4))
            attached = attach_workspace(ws.descriptor())
            attached.arrays["out"][1, :] = 7.0
            np.testing.assert_array_equal(out[1], np.full(4, 7.0))
            detach_all()
        assert active_segment_names() == ()


class TestRepublication:
    """Re-publishing a block must never serve stale views or bytes."""

    def test_recreated_block_gets_a_fresh_segment_name(self):
        """Resizing a block bumps the generation stamp in the segment
        name, so a stale mapping can never alias the new segment."""
        with ShmWorkspace(tag="gen") as ws:
            ws.put("a", np.arange(4.0))
            first = ws.descriptor().arrays["a"].segment
            ws.put("a", np.arange(6.0))  # resize -> recreate
            second = ws.descriptor().arrays["a"].segment
            assert first != second
        assert active_segment_names() == ()

    def test_resized_block_invalidates_cached_attachment(self):
        """The attach cache revalidates the full spec map: a resized
        block (same key, new segment) forces a fresh attach instead of
        serving views of the old unlinked segment."""
        with ShmWorkspace(tag="respec") as ws:
            ws.put("a", np.arange(6.0))
            attach_workspace(ws.descriptor())
            ws.put("a", np.arange(2.0, 10.0))  # resize under the cache
            attached = attach_workspace(ws.descriptor())
            assert attached.arrays["a"].shape == (8,)
            np.testing.assert_array_equal(
                attached.arrays["a"], np.arange(2.0, 10.0)
            )
            detach_all()
        assert active_segment_names() == ()

    def test_reallocated_output_block_invalidates_cached_attachment(self):
        """Writes through a re-attach after allocate() resized the
        output block land in the segment the parent reads."""
        with ShmWorkspace(tag="realloc") as ws:
            ws.allocate("out", (2, 3))
            attach_workspace(ws.descriptor())
            bigger = ws.allocate("out", (4, 3))
            attached = attach_workspace(ws.descriptor())
            attached.arrays["out"][3, :] = 9.0
            np.testing.assert_array_equal(bigger[3], np.full(3, 9.0))
            detach_all()
        assert active_segment_names() == ()

    def test_collected_source_never_skips_publication(self):
        """The publish-skip fast path holds a weakref to the source
        array: once the source is collected, a new array — even one
        reusing the old object's id() — must be re-published."""
        from repro.obs.metrics import counter

        with ShmWorkspace(tag="weak") as ws:
            first = np.arange(4.0)
            first.setflags(write=False)
            ws.put("a", first)
            skipped = counter("parallel_shm_publish_skipped_total").value
            ws.put("a", first)  # same live read-only object: skipped
            assert counter(
                "parallel_shm_publish_skipped_total"
            ).value == skipped + 1
            del first
            replacement = np.full(4, 7.0)
            replacement.setflags(write=False)
            published = counter("parallel_shm_publish_total").value
            ws.put("a", replacement)
            assert counter(
                "parallel_shm_publish_total"
            ).value == published + 1
            np.testing.assert_array_equal(ws.get("a"), replacement)
        assert active_segment_names() == ()


class TestShmEqualsSerial:
    @given(
        tree=rc_trees(min_nodes=2, max_nodes=10),
        samples=st.integers(min_value=1, max_value=40),
        jobs=st.integers(min_value=1, max_value=3),
        shard_size=st.one_of(
            st.none(), st.integers(min_value=1, max_value=8)
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=8, **COMMON)
    def test_bit_identical_for_random_trees_and_jobs(
        self, tree, samples, jobs, shard_size, seed
    ):
        model = VariationModel(
            resistance_sigma=0.08, capacitance_sigma=0.05
        )
        serial = monte_carlo_delay_matrix(
            tree, model, samples, seed=seed, shard_size=shard_size,
        )
        shm = monte_carlo_delay_matrix(
            tree, model, samples, seed=seed, shard_size=shard_size,
            jobs=jobs, backend="shm",
        )
        np.testing.assert_array_equal(shm, serial)
