"""Hypothesis strategies for random RC trees and input signals."""

import numpy as np
from hypothesis import strategies as st

from repro.circuit import RCTree
from repro.signals import (
    ExponentialInput,
    RaisedCosineRamp,
    SaturatedRamp,
    SmoothstepRamp,
    StepInput,
)

__all__ = ["rc_trees", "unimodal_signals", "symmetric_signals"]

# Element values spanning several decades but kept in ranges where the
# numerics (eigensolves, root finding) are well away from float limits.
_resistances = st.floats(min_value=1.0, max_value=1e5,
                         allow_nan=False, allow_infinity=False)
_capacitances = st.floats(min_value=1e-16, max_value=1e-11,
                          allow_nan=False, allow_infinity=False)


@st.composite
def rc_trees(draw, min_nodes=1, max_nodes=14):
    """A random RC tree: node k attaches to a uniformly drawn earlier node.

    Every node gets a strictly positive capacitance (the theorems allow
    zero caps, but they are covered by dedicated unit tests; keeping the
    property trees fully dynamic keeps the eigen-based oracles simple).
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    tree = RCTree("in")
    names = ["in"]
    for k in range(1, n + 1):
        parent = names[draw(st.integers(min_value=0, max_value=len(names) - 1))]
        r = draw(_resistances)
        c = draw(_capacitances)
        name = f"n{k}"
        tree.add_node(name, parent, r, c)
        names.append(name)
    return tree


_rise_times = st.floats(min_value=1e-11, max_value=1e-7,
                        allow_nan=False, allow_infinity=False)


@st.composite
def symmetric_signals(draw):
    """A signal with a symmetric unimodal derivative (Corollary 3 scope)."""
    kind = draw(st.sampled_from(["step", "ramp", "cosine", "smooth"]))
    if kind == "step":
        return StepInput()
    tr = draw(_rise_times)
    if kind == "ramp":
        return SaturatedRamp(tr)
    if kind == "cosine":
        return RaisedCosineRamp(tr)
    return SmoothstepRamp(tr)


@st.composite
def unimodal_signals(draw):
    """Any signal with a unimodal derivative (Corollary 2 scope)."""
    kind = draw(st.sampled_from(["sym", "expo"]))
    if kind == "expo":
        return ExponentialInput(draw(_rise_times))
    return draw(symmetric_signals())
