"""Property-based tests of the paper's theorem and corollaries.

These are the strongest form of reproduction: hypothesis searches tree
topologies and element values adversarially for a counterexample to each
claim.  All oracles are the exact pole/residue engine.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import ExactAnalysis, measure_delay
from repro.core import delay_bounds, prh_bounds, transfer_moments
from repro.signals import SaturatedRamp

from tests.properties.strategies import (
    rc_trees,
    symmetric_signals,
    unimodal_signals,
)

COMMON = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTheorem:
    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_elmore_upper_bounds_step_delay_everywhere(self, tree):
        analysis = ExactAnalysis(tree)
        moments = transfer_moments(tree, 1)
        for name in tree.node_names:
            actual = measure_delay(analysis, name)
            assert actual <= moments.mean(name) * (1 + 1e-9)

    @given(tree=rc_trees())
    @settings(max_examples=40, **COMMON)
    def test_lower_bound_holds_everywhere(self, tree):
        analysis = ExactAnalysis(tree)
        moments = transfer_moments(tree, 2)
        for name in tree.node_names:
            actual = measure_delay(analysis, name)
            lower = max(moments.mean(name) - moments.sigma(name), 0.0)
            assert actual >= lower * (1 - 1e-9)

    @given(tree=rc_trees(max_nodes=8))
    @settings(max_examples=25, **COMMON)
    def test_impulse_response_unimodal_and_ordered(self, tree):
        from hypothesis import assume
        from repro.core.statistics import waveform_stats
        analysis = ExactAnalysis(tree)
        # Gate on spectral conditioning: beyond ~1e6 pole spread the
        # eigensolver's residue noise (O(eps * cond) relative) manufactures
        # micro-dips that a sampled-unimodality check cannot distinguish
        # from real ones.
        assume(analysis.poles[-1] / analysis.poles[0] < 1e6)
        # Random trees can still spread poles widely; a geometric grid
        # resolves every time scale where a uniform one cannot.
        fastest = float(analysis.poles[-1])
        for name in tree.node_names:
            transfer = analysis.transfer(name)
            horizon = transfer.settle_time(1e-9)
            t = np.concatenate(
                ([0.0], np.geomspace(0.001 / fastest, horizon, 12000))
            )
            h = transfer.impulse_response(t)
            assert np.min(h) >= -1e-9 * max(np.max(h), 1e-300)
            stats = waveform_stats(t, h)
            assert stats.unimodal
            # Compare against analytic moments: the grid statistics are
            # only trusted when the measured mean agrees with the exact
            # one (otherwise the waveform is numerically unresolvable).
            exact_mean = transfer.raw_moment(1)
            if not np.isclose(stats.mean, exact_mean, rtol=1e-3):
                continue
            assert stats.ordering_holds


class TestLemma2:
    @given(tree=rc_trees())
    @settings(max_examples=80, **COMMON)
    def test_skewness_nonnegative(self, tree):
        moments = transfer_moments(tree, 3)
        for name in tree.node_names:
            mu2 = moments.variance(name)
            mu3 = moments.third_central_moment(name)
            scale2 = moments.mean(name) ** 2
            scale3 = abs(moments.mean(name)) ** 3
            assert mu2 >= -1e-12 * scale2
            assert mu3 >= -1e-12 * scale3


class TestGeneralizedInputs:
    @given(tree=rc_trees(max_nodes=8), signal=unimodal_signals())
    @settings(max_examples=30, **COMMON)
    def test_corollary2_bounds_hold(self, tree, signal):
        analysis = ExactAnalysis(tree)
        bounds = delay_bounds(tree, signal=signal)
        for name in tree.node_names:
            actual = measure_delay(analysis, name, signal)
            b = bounds[name]
            assert b.contains(actual, rel_tol=1e-6)

    @given(tree=rc_trees(max_nodes=6), signal=symmetric_signals())
    @settings(max_examples=25, **COMMON)
    def test_symmetric_inputs_never_exceed_elmore(self, tree, signal):
        analysis = ExactAnalysis(tree)
        moments = transfer_moments(tree, 1)
        for name in tree.node_names:
            actual = measure_delay(analysis, name, signal)
            assert actual <= moments.mean(name) * (1 + 1e-6)

    @given(tree=rc_trees(max_nodes=6))
    @settings(max_examples=15, **COMMON)
    def test_corollary3_monotone_approach(self, tree):
        """Delay is nondecreasing in rise time and approaches T_D."""
        analysis = ExactAnalysis(tree)
        leaf = tree.leaves()[0]
        td = transfer_moments(tree, 1).mean(leaf)
        # Rise times scaled to the circuit's own time constant.
        base = analysis.dominant_time_constant
        scales = (0.5, 2.0, 8.0, 32.0, 128.0)
        delays = [
            measure_delay(analysis, leaf, SaturatedRamp(base * s))
            for s in scales
        ]
        # The crossing search resolves times to ~1e-13 of the *absolute*
        # crossing (~t_r/2 for slow ramps), which can exceed 1e-9 of the
        # measured delay when delay << t_r; budget for it explicitly.
        tol = 1e-8 * td + 1e-11 * base * scales[-1]
        for a, b in zip(delays, delays[1:]):
            assert b >= a - tol
        assert delays[-1] <= td + tol
        assert delays[-1] >= td * 0.95 - tol


class TestPRHBounds:
    @given(tree=rc_trees(max_nodes=10))
    @settings(max_examples=30, **COMMON)
    def test_prh_interval_contains_crossings(self, tree):
        analysis = ExactAnalysis(tree)
        all_bounds = prh_bounds(tree)
        for name in tree.node_names:
            from repro.analysis import threshold_crossing
            transfer = analysis.transfer(name)
            b = all_bounds[name]
            # The PRH bounds are exactly tight on degenerate (near
            # single-pole) trees, so allow waveform-evaluation roundoff.
            for v in (0.25, 0.5, 0.75):
                t = threshold_crossing(transfer, threshold=v)
                assert b.t_min(v) <= t * (1 + 1e-6) + 1e-30
                assert t <= b.t_max(v) * (1 + 1e-6) + 1e-30
