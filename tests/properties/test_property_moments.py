"""Property-based tests of the moment machinery and its identities."""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.analysis import ExactAnalysis
from repro.analysis.admittance import pi_model, pi_model_from_moments
from repro.analysis.mna import build_mna, mna_transfer_moments
from repro.core.elmore import (
    elmore_delay_quadratic,
    elmore_delays,
    rph_time_constants,
)
from repro.core.moments import admittance_moments, transfer_moments

from tests.properties.strategies import rc_trees

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


class TestCrossImplementationAgreement:
    @given(tree=rc_trees())
    @settings(max_examples=50, **COMMON)
    def test_tree_recursion_matches_mna(self, tree):
        a = transfer_moments(tree, 3).coefficients
        b = mna_transfer_moments(tree, 3)
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=0.0)

    @given(tree=rc_trees())
    @settings(max_examples=50, **COMMON)
    def test_elmore_matches_quadratic_oracle(self, tree):
        fast = elmore_delays(tree)
        for name in tree.node_names:
            slow = elmore_delay_quadratic(tree, name)
            assert np.isclose(fast[tree.index_of(name)], slow, rtol=1e-10)

    @given(tree=rc_trees(max_nodes=10))
    @settings(max_examples=30, **COMMON)
    def test_eigen_moments_match_recursion(self, tree):
        from hypothesis import assume
        analysis = ExactAnalysis(tree)
        # The eigensolver loses the slow poles' relative accuracy as the
        # spectrum's condition number grows (absolute eigenvalue error is
        # ~eps * lam_max); restrict the oracle comparison to resolvable
        # spectra.
        poles = analysis.poles
        assume(poles[-1] / poles[0] < 1e6)
        moments = transfer_moments(tree, 3)
        for name in tree.node_names:
            eig = analysis.raw_moments(name, 2)
            rec = moments.raw_moments(name)[:3]
            # Only M_0..M_2 are compared here: M_3's residue cancellation
            # on adversarial spectra exceeds any honest tolerance (it can
            # even flip sign); the strict high-order comparisons live in
            # the unit tests on well-conditioned circuits (rtol 1e-9).
            np.testing.assert_allclose(eig[:2], rec[:2], rtol=1e-6)
            np.testing.assert_allclose(eig[2], rec[2], rtol=2e-2)

    @given(tree=rc_trees())
    @settings(max_examples=50, **COMMON)
    def test_sum_of_time_constants_identity(self, tree):
        """b_1 = sum(1/p_j) = T_P: the trace identity (eq. 10 + eq. 16).

        The sum of the circuit's reciprocal poles equals the sum over
        nodes of R_kk C_k, which path tracing computes as T_P.
        """
        analysis = ExactAnalysis(tree)
        constants = rph_time_constants(tree)
        assert np.isclose(
            np.sum(1.0 / analysis.poles), constants.t_p, rtol=1e-8
        )


class TestStructuralInvariants:
    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_rph_constant_ordering(self, tree):
        constants = rph_time_constants(tree)
        assert np.all(constants.t_r <= constants.t_d * (1 + 1e-10))
        assert np.all(constants.t_d <= constants.t_p * (1 + 1e-10))
        assert np.all(constants.t_r > 0.0)

    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_admittance_moment_signs(self, tree):
        m = admittance_moments(tree, 3)
        assert m[0] == 0.0
        assert m[1] > 0.0
        assert m[2] <= 1e-30
        assert m[3] >= -1e-45

    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_pi_model_matches_and_is_nonnegative(self, tree):
        pi = pi_model(tree)
        np.testing.assert_allclose(
            pi.admittance_moments(),
            admittance_moments(tree, 3),
            rtol=1e-7, atol=1e-45,
        )
        assert pi.c1 >= 0.0 and pi.c2 >= 0.0 and pi.r2 >= 0.0

    @given(tree=rc_trees())
    @settings(max_examples=60, **COMMON)
    def test_elmore_monotone_downstream(self, tree):
        delays = elmore_delays(tree)
        parents = tree.parents
        for i in range(tree.num_nodes):
            p = parents[i]
            if p >= 0:
                assert delays[i] >= delays[p] * (1 - 1e-12)

    @given(tree=rc_trees())
    @settings(max_examples=40, **COMMON)
    def test_conductance_matrix_spd(self, tree):
        g = build_mna(tree).conductance
        np.testing.assert_allclose(g, g.T)
        assert np.all(np.linalg.eigvalsh(g) > 0.0)

    @given(tree=rc_trees(max_nodes=10))
    @settings(max_examples=30, **COMMON)
    def test_dc_gain_unity(self, tree):
        analysis = ExactAnalysis(tree)
        for name in tree.node_names:
            # Residues of clustered eigenvalue pairs individually carry
            # O(eps/gap) error; their sums (the DC gain) are accurate to
            # well under 1e-6 in practice.
            assert np.isclose(analysis.transfer(name).dc_gain, 1.0,
                              rtol=1e-6)
