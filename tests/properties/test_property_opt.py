"""Property-based tests of the optimization and incremental layers."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import elmore_delay
from repro.core.incremental import IncrementalElmore
from repro.opt import (
    BufferSink,
    BufferType,
    buffered_stage_delays,
    insert_buffers,
)

from tests.properties.strategies import rc_trees

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


class TestIncrementalOracle:
    @given(tree=rc_trees(max_nodes=12), data=st.data())
    @settings(max_examples=40, **COMMON)
    def test_matches_batch_after_arbitrary_edits(self, tree, data):
        inc = IncrementalElmore(tree)
        shadow = tree.copy()
        names = list(tree.node_names)
        n_edits = data.draw(st.integers(min_value=1, max_value=8))
        for _ in range(n_edits):
            name = data.draw(st.sampled_from(names))
            if data.draw(st.booleans()):
                c = data.draw(st.floats(min_value=0.0, max_value=1e-11,
                                        allow_nan=False))
                inc.set_capacitance(name, c)
                shadow.set_capacitance(name, c)
            else:
                r = data.draw(st.floats(min_value=1.0, max_value=1e5,
                                        allow_nan=False))
                inc.set_resistance(name, r)
                shadow.set_resistance(name, r)
        if shadow.total_capacitance() <= 0.0:
            return  # all caps zeroed: no meaningful delays
        probe = data.draw(st.sampled_from(names))
        assert np.isclose(
            inc.delay(probe), elmore_delay(shadow, probe), rtol=1e-10
        )


_buffers = st.builds(
    BufferType,
    name=st.just("B"),
    input_capacitance=st.floats(min_value=1e-15, max_value=5e-14,
                                allow_nan=False),
    output_resistance=st.floats(min_value=20.0, max_value=500.0,
                                allow_nan=False),
    intrinsic_delay=st.floats(min_value=0.0, max_value=1e-10,
                              allow_nan=False),
)


class TestBufferingOptimality:
    @given(tree=rc_trees(min_nodes=3, max_nodes=8), buffer=_buffers,
           data=st.data())
    @settings(max_examples=30, **COMMON)
    def test_dp_never_beaten_by_random_subsets(self, tree, buffer, data):
        """Van Ginneken is optimal: no sampled buffer subset achieves a
        smaller worst delay than the DP's choice."""
        leaves = tree.leaves()
        sinks = [BufferSink(leaf, 5e-15) for leaf in leaves]
        driver = 200.0
        result = insert_buffers(tree, sinks, buffer, driver)

        def worst_delay(nodes):
            arrival = buffered_stage_delays(tree, sinks, buffer, driver,
                                            nodes)
            return max(arrival[s.node] for s in sinks)

        dp_delay = worst_delay(result.buffer_nodes)
        names = list(tree.node_names)
        for _ in range(6):
            subset = data.draw(
                st.sets(st.sampled_from(names), max_size=min(4, len(names)))
            )
            assert dp_delay <= worst_delay(sorted(subset)) * (1 + 1e-9)

    @given(tree=rc_trees(min_nodes=2, max_nodes=10), buffer=_buffers)
    @settings(max_examples=40, **COMMON)
    def test_dp_objective_matches_stage_reeval(self, tree, buffer):
        """The DP's predicted worst slack equals the staged Elmore
        re-evaluation of its own solution."""
        sinks = [BufferSink(leaf, 5e-15) for leaf in tree.leaves()]
        result = insert_buffers(tree, sinks, buffer, 200.0)
        arrival = buffered_stage_delays(
            tree, sinks, buffer, 200.0, result.buffer_nodes
        )
        worst = min(s.required_time - arrival[s.node] for s in sinks)
        assert np.isclose(result.required_at_driver, worst, rtol=1e-9)

    @given(tree=rc_trees(min_nodes=2, max_nodes=10), buffer=_buffers)
    @settings(max_examples=40, **COMMON)
    def test_insertion_never_hurts(self, tree, buffer):
        """The DP always has the empty insertion available, so its
        objective is at least the unbuffered one."""
        sinks = [BufferSink(leaf, 5e-15) for leaf in tree.leaves()]
        result = insert_buffers(tree, sinks, buffer, 200.0)
        assert result.required_at_driver >= \
            result.unbuffered_required - 1e-18
