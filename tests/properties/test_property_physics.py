"""Property-based tests of the physics-layer extensions: sensitivities,
variation statistics, distributed lines, and reduction invariance."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.distributed import DistributedLine
from repro.analysis.reduction import reduce_tree
from repro.core import elmore_delay, transfer_moments
from repro.core.sensitivity import elmore_sensitivity
from repro.core.variation import VariationModel, elmore_statistics

from tests.properties.strategies import rc_trees

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


class TestSensitivityProperties:
    @given(tree=rc_trees(max_nodes=12), data=st.data())
    @settings(max_examples=40, **COMMON)
    def test_resistance_prediction_exact(self, tree, data):
        """T_D is linear in any single resistance, so the first-order
        prediction is exact for R edits."""
        names = list(tree.node_names)
        target = data.draw(st.sampled_from(names))
        edited = data.draw(st.sampled_from(names))
        factor = data.draw(st.floats(min_value=0.1, max_value=10.0,
                                     allow_nan=False))
        sens = elmore_sensitivity(tree, target)
        base = elmore_delay(tree, target)
        bumped = tree.copy()
        r0 = bumped.node(edited).resistance
        bumped.set_resistance(edited, r0 * factor)
        predicted = base + sens.resistance_sensitivity(edited) * \
            (r0 * factor - r0)
        actual = elmore_delay(bumped, target)
        assert np.isclose(predicted, actual, rtol=1e-9)

    @given(tree=rc_trees(max_nodes=12), data=st.data())
    @settings(max_examples=40, **COMMON)
    def test_capacitance_prediction_exact(self, tree, data):
        names = list(tree.node_names)
        target = data.draw(st.sampled_from(names))
        edited = data.draw(st.sampled_from(names))
        extra = data.draw(st.floats(min_value=0.0, max_value=1e-11,
                                    allow_nan=False))
        sens = elmore_sensitivity(tree, target)
        base = elmore_delay(tree, target)
        bumped = tree.copy()
        bumped.add_load(edited, extra)
        predicted = base + sens.capacitance_sensitivity(edited) * extra
        assert np.isclose(predicted, elmore_delay(bumped, target),
                          rtol=1e-9)

    @given(tree=rc_trees(max_nodes=12))
    @settings(max_examples=40, **COMMON)
    def test_gradients_nonnegative(self, tree):
        """T_D is monotone in every element value."""
        for name in tree.leaves()[:2]:
            sens = elmore_sensitivity(tree, name)
            assert np.all(sens.dR >= 0.0)
            assert np.all(sens.dC >= 0.0)


class TestVariationProperties:
    @given(tree=rc_trees(max_nodes=12),
           sigma=st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    @settings(max_examples=40, **COMMON)
    def test_mean_is_nominal_and_std_grows(self, tree, sigma):
        leaf = tree.leaves()[0]
        nominal = elmore_delay(tree, leaf)
        stats = elmore_statistics(
            tree, leaf,
            VariationModel(resistance_sigma=sigma,
                           capacitance_sigma=sigma),
        )
        assert np.isclose(stats.mean, nominal, rtol=1e-12)
        assert stats.std >= stats.std_first_order >= 0.0
        if sigma == 0.0:
            assert stats.std == 0.0

    @given(tree=rc_trees(max_nodes=10))
    @settings(max_examples=30, **COMMON)
    def test_std_bounded_by_full_correlation(self, tree):
        """Independent-variation std can never exceed the fully-correlated
        (worst-case) excursion at the same sigma."""
        sigma = 0.2
        leaf = tree.leaves()[0]
        stats = elmore_statistics(
            tree, leaf,
            VariationModel(resistance_sigma=sigma,
                           capacitance_sigma=sigma),
        )
        nominal = elmore_delay(tree, leaf)
        # Fully correlated +1-sigma corner: all R and C up by sigma.
        corner = nominal * ((1 + sigma) ** 2 - 1)
        assert stats.std <= corner * (1 + 1e-9)


class TestDistributedProperties:
    @given(
        resistance=st.floats(min_value=1.0, max_value=1e5,
                             allow_nan=False),
        capacitance=st.floats(min_value=1e-15, max_value=1e-10,
                              allow_nan=False),
        rd=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        cl=st.floats(min_value=0.0, max_value=1e-11, allow_nan=False),
    )
    @settings(max_examples=50, **COMMON)
    def test_elmore_formula_and_ladder_match(self, resistance,
                                             capacitance, rd, cl):
        line = DistributedLine(resistance, capacitance,
                               driver_resistance=rd, load_capacitance=cl)
        expected = rd * (capacitance + cl) + \
            resistance * capacitance / 2 + resistance * cl
        assert np.isclose(line.elmore_delay(), expected, rtol=1e-9)
        tree = line.ladder(8)
        end = "x8"
        assert np.isclose(
            elmore_delay(tree, end), expected, rtol=1e-9
        )

    @given(
        resistance=st.floats(min_value=10.0, max_value=1e4,
                             allow_nan=False),
        capacitance=st.floats(min_value=1e-14, max_value=1e-11,
                              allow_nan=False),
    )
    @settings(max_examples=30, **COMMON)
    def test_skew_positive_along_line(self, resistance, capacitance):
        line = DistributedLine(resistance, capacitance)
        for pos in (0.25, 0.5, 1.0):
            assert line.skewness(pos) > 0.0
            assert line.variance(pos) > 0.0


class TestReductionInvariance:
    @given(tree=rc_trees(min_nodes=4, max_nodes=14))
    @settings(max_examples=30, **COMMON)
    def test_observed_moments_invariant(self, tree):
        leaf = tree.leaves()[-1]
        reduced = reduce_tree(tree, [leaf])
        full = transfer_moments(tree, 3).at(leaf)
        red = transfer_moments(reduced, 3).at(leaf)
        np.testing.assert_allclose(red, full, rtol=1e-7)
        assert reduced.num_nodes <= tree.num_nodes + 0
