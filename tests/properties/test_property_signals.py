"""Property-based tests of the signal library and convolution machinery."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.signals import PWLSignal, SaturatedRamp
from repro.signals.base import exp_convolve_pwl

from tests.properties.strategies import unimodal_signals

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])

_rates = st.floats(min_value=1e6, max_value=1e12,
                   allow_nan=False, allow_infinity=False)


class TestSignalContract:
    @given(signal=unimodal_signals())
    @settings(max_examples=50, **COMMON)
    def test_monotone_and_bounded(self, signal):
        t = np.linspace(-1e-9, signal.settle_time + 1e-9, 500)
        v = signal.value(t)
        assert np.all(np.diff(v) >= -1e-12)
        assert np.all(v >= 0.0)
        assert np.all(v <= 1.0 + 1e-12)

    @given(signal=unimodal_signals(), lam=_rates)
    @settings(max_examples=40, **COMMON)
    def test_exp_convolution_monotone_bounded(self, signal, lam):
        """E(t) is nonnegative, below 1/lam, and settles to 1/lam."""
        t = np.linspace(0.0, signal.settle_time + 40.0 / lam, 300)
        e = signal.exp_convolution(lam, t)
        assert np.all(e >= -1e-15 / lam)
        assert np.all(e <= (1.0 + 1e-9) / lam)
        assert np.isclose(e[-1], 1.0 / lam, rtol=1e-6)

    @given(signal=unimodal_signals(), lam=_rates)
    @settings(max_examples=30, **COMMON)
    def test_exp_convolution_ode_residual(self, signal, lam):
        """E' + lam E = v(t): check the defining ODE by finite differences
        away from input kinks."""
        t0 = signal.settle_time * 0.35 + 1.0 / lam
        h = min(1.0 / lam, signal.settle_time + 1.0 / lam) * 1e-4
        t = np.array([t0 - h, t0, t0 + h])
        e = signal.exp_convolution(lam, t)
        derivative = (e[2] - e[0]) / (2 * h)
        residual = derivative + lam * e[1] - float(signal.value(np.asarray(t0)))
        scale = max(1.0, abs(derivative))
        assert abs(residual) <= 1e-4 * scale


class TestPWLConvolution:
    @given(
        lam=_rates,
        breaks=st.lists(
            st.floats(min_value=1e-12, max_value=1e-8,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=8, unique=True,
        ),
    )
    @settings(max_examples=40, **COMMON)
    def test_matches_saturated_ramp_on_two_points(self, lam, breaks):
        """A 2-point PWL is a saturated ramp; closed forms must agree."""
        t0 = 0.0
        t1 = max(breaks)
        pwl = PWLSignal([t0, t1], [0.0, 1.0])
        ramp = SaturatedRamp(t1)
        t = np.linspace(0.0, 3 * t1 + 10 / lam, 64)
        np.testing.assert_allclose(
            pwl.exp_convolution(lam, t),
            ramp.exp_convolution(lam, t),
            rtol=1e-8, atol=1e-12 / lam,
        )

    @given(lam=_rates)
    @settings(max_examples=30, **COMMON)
    def test_exp_convolve_pwl_linearity(self, lam):
        """The stepper is linear in the waveform values."""
        grid = np.linspace(0.0, 1e-8, 33)
        rng = np.random.default_rng(7)
        va = rng.uniform(0, 1, grid.shape)
        vb = rng.uniform(0, 1, grid.shape)
        t = np.linspace(0.0, 2e-8, 17)
        ea = exp_convolve_pwl(lam, grid, va, t)
        eb = exp_convolve_pwl(lam, grid, vb, t)
        eab = exp_convolve_pwl(lam, grid, 2.0 * va + 3.0 * vb, t)
        np.testing.assert_allclose(eab, 2 * ea + 3 * eb,
                                   rtol=1e-9, atol=1e-18 / lam)

    @given(lam=_rates)
    @settings(max_examples=30, **COMMON)
    def test_off_grid_queries_consistent(self, lam):
        """Querying between grid points equals querying a denser grid."""
        grid = np.linspace(0.0, 1e-8, 21)
        values = np.sqrt(np.linspace(0.0, 1.0, 21))
        dense_grid = np.linspace(0.0, 1e-8, 201)
        dense_values = np.interp(dense_grid, grid, values)
        t = np.linspace(1e-10, 1.5e-8, 40)
        coarse = exp_convolve_pwl(lam, grid, values, t)
        dense = exp_convolve_pwl(lam, dense_grid, dense_values, t)
        np.testing.assert_allclose(coarse, dense, rtol=1e-9,
                                   atol=1e-15 / lam)
