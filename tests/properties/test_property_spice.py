"""Property-based round-trip tests of the SPICE reader/writer."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import parse_rc_tree, tree_to_netlist
from repro.circuit.spice import format_value, parse_value
from repro.core import elmore_delays

from tests.properties.strategies import rc_trees

COMMON = dict(deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])


class TestValueRoundTrip:
    @given(value=st.floats(min_value=1e-18, max_value=1e13,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, **COMMON)
    def test_format_parse_round_trip(self, value):
        assert parse_value(format_value(value)) == \
            np.float64(f"{value:.6g}") or np.isclose(
                parse_value(format_value(value)), value, rtol=1e-5
            )

    @given(
        mantissa=st.floats(min_value=0.001, max_value=999.0,
                           allow_nan=False),
        suffix=st.sampled_from(["", "f", "p", "n", "u", "m", "k", "meg",
                                "g", "t"]),
    )
    @settings(max_examples=150, **COMMON)
    def test_suffix_parsing_scales(self, mantissa, suffix):
        scale = {"": 1.0, "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
                 "m": 1e-3, "k": 1e3, "meg": 1e6, "g": 1e9, "t": 1e12}
        token = f"{mantissa:.6g}{suffix}"
        assert np.isclose(parse_value(token),
                          float(f"{mantissa:.6g}") * scale[suffix],
                          rtol=1e-12)


class TestNetlistRoundTrip:
    @given(tree=rc_trees(max_nodes=14),
           amplitude=st.floats(min_value=0.5, max_value=5.0,
                               allow_nan=False))
    @settings(max_examples=50, **COMMON)
    def test_tree_survives_round_trip(self, tree, amplitude):
        text = tree_to_netlist(tree, title="fuzz", amplitude=amplitude)
        parsed, parsed_amp = parse_rc_tree(text)
        assert np.isclose(parsed_amp, amplitude, rtol=1e-5)
        assert set(parsed.node_names) == set(tree.node_names)
        for name in tree.node_names:
            assert np.isclose(
                parsed.node(name).resistance,
                tree.node(name).resistance, rtol=1e-5,
            )
            assert np.isclose(
                parsed.node(name).capacitance,
                tree.node(name).capacitance, rtol=1e-5, atol=1e-30,
            )

    @given(tree=rc_trees(max_nodes=12))
    @settings(max_examples=40, **COMMON)
    def test_elmore_survives_round_trip(self, tree):
        parsed, _ = parse_rc_tree(tree_to_netlist(tree))
        original = elmore_delays(tree)
        for name in tree.node_names:
            i_orig = tree.index_of(name)
            reparsed = elmore_delays(parsed)[parsed.index_of(name)]
            assert np.isclose(reparsed, original[i_orig], rtol=1e-4)

    @given(tree=rc_trees(max_nodes=10))
    @settings(max_examples=30, **COMMON)
    def test_formatting_perturbations_parse_identically(self, tree):
        """Extra comments, blank lines and case changes don't change the
        parse."""
        text = tree_to_netlist(tree, title="fuzz")
        lines = text.splitlines()
        noisy = []
        for k, line in enumerate(lines):
            noisy.append("* noise comment")
            if line.startswith("R") or line.startswith("C"):
                noisy.append(line + "   $ trailing")
            else:
                noisy.append(line)
            noisy.append("")
        clean, _ = parse_rc_tree(text)
        fuzzed, _ = parse_rc_tree("\n".join(noisy))
        assert set(fuzzed.node_names) == set(clean.node_names)
        for name in clean.node_names:
            assert fuzzed.node(name).resistance == \
                clean.node(name).resistance
