"""Shared fixtures for the resilience tests.

Fault schedules are process-global and the fault/executor tests lean on
the shm transport; a leaked schedule or segment would poison every test
after it.  The autouse gate below disarms any armed schedule and tears
the warm pool/segments down after *every* test in this package, failing
loudly on a surviving library-owned ``/dev/shm`` segment.
"""

import pytest

import repro.parallel as parallel
from repro.parallel.shm import active_segment_names
from repro.resilience.faults import clear_faults, reset


@pytest.fixture(autouse=True)
def fault_and_shm_gate():
    clear_faults()
    yield
    clear_faults()
    reset()
    parallel.shutdown()
    leaked = active_segment_names()
    assert leaked == (), (
        f"shared-memory segments leaked past teardown: {leaked}"
    )
