"""Crash-safe checkpoint journals: round-trips, tail repair after a
mid-write crash, fingerprint discipline, codecs, and the counters the
run-report notices are built from."""

import json
import os

import numpy as np
import pytest

from repro.circuit.rctree import RCTree
from repro.obs.metrics import counter
from repro.resilience.checkpoint import (
    SCHEMA,
    CheckpointError,
    close_open_journals,
    open_checkpoint,
    run_fingerprint,
    tree_fingerprint,
)


def chain_tree(n=4, r=1.0, c=1.0):
    tree = RCTree("n0")
    for i in range(1, n):
        tree.add_node(f"n{i}", f"n{i - 1}", r, c)
    return tree


class TestFingerprints:
    def test_run_fingerprint_deterministic(self):
        a = run_fingerprint("verify_corpus", trees=["abc"], samples=100,
                            plan=[3, 3, 2])
        b = run_fingerprint("verify_corpus", trees=["abc"], samples=100,
                            plan=[3, 3, 2])
        assert a == b

    def test_run_fingerprint_sensitive_to_every_ingredient(self):
        base = run_fingerprint("mc", seed=0, samples=10, plan=[5, 5])
        assert base != run_fingerprint("mc", seed=1, samples=10,
                                       plan=[5, 5])
        assert base != run_fingerprint("mc", seed=0, samples=11,
                                       plan=[5, 5])
        assert base != run_fingerprint("mc", seed=0, samples=10,
                                       plan=[5, 4, 1])
        assert base != run_fingerprint("mc2", seed=0, samples=10,
                                       plan=[5, 5])

    def test_ndarray_params_hash_by_content(self):
        x = np.arange(8, dtype=np.float64)
        assert run_fingerprint("k", sigma=x) == \
            run_fingerprint("k", sigma=x.copy())
        y = x.copy()
        y[3] += 1e-12
        assert run_fingerprint("k", sigma=x) != \
            run_fingerprint("k", sigma=y)

    def test_tree_fingerprint_content_hash(self):
        assert tree_fingerprint(chain_tree()) == \
            tree_fingerprint(chain_tree())
        assert tree_fingerprint(chain_tree(r=1.0)) != \
            tree_fingerprint(chain_tree(r=2.0))
        assert tree_fingerprint(chain_tree(n=4)) != \
            tree_fingerprint(chain_tree(n=5))


class TestJournalRoundTrip:
    def test_record_then_resume(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=0)
        rows = {0: np.arange(6, dtype=np.float64).reshape(2, 3),
                2: np.full((2, 3), np.pi)}
        journal = open_checkpoint(path, fp, 4)
        assert journal.resumed == 0
        for index, value in rows.items():
            journal.record(index, value)
        journal.close()

        resumed = open_checkpoint(path, fp, 4, resume=True)
        assert resumed.resumed == 2
        assert resumed.completed_indices() == [0, 2]
        restored = resumed.restore_results(4)
        resumed.close()
        assert set(restored) == {0, 2}
        for index, value in rows.items():
            assert restored[index].dtype == value.dtype
            assert np.array_equal(restored[index], value)

    def test_pickle_codec_for_object_payloads(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=1)
        payload = [("verdict", 1, 2.5), {"node": "n3"}]
        with open_checkpoint(path, fp, 2) as journal:
            journal.record(1, payload)
        with open_checkpoint(path, fp, 2, resume=True) as resumed:
            assert resumed.restore_results(2) == {1: payload}

    def test_without_resume_existing_journal_is_replaced(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=2)
        with open_checkpoint(path, fp, 2) as journal:
            journal.record(0, np.zeros(3))
        with open_checkpoint(path, fp, 2) as journal:
            assert journal.resumed == 0
        with open_checkpoint(path, fp, 2, resume=True) as resumed:
            assert resumed.restore_results(2) == {}

    def test_restore_ignores_out_of_range_shards(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=3)
        with open_checkpoint(path, fp, 4) as journal:
            journal.record(0, np.zeros(2))
            journal.record(3, np.ones(2))
        with open_checkpoint(path, fp, 4, resume=True) as resumed:
            assert set(resumed.restore_results(2)) == {0}

    def test_record_after_close_drops_silently(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=4)
        journal = open_checkpoint(path, fp, 2)
        journal.close()
        journal.record(0, np.zeros(2))  # must not raise
        with open_checkpoint(path, fp, 2, resume=True) as resumed:
            assert resumed.resumed == 0


class TestCrashRepair:
    def _journal_with_two_shards(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=5)
        with open_checkpoint(path, fp, 4) as journal:
            journal.record(0, np.arange(4, dtype=np.float64))
            journal.record(1, np.arange(4, 8, dtype=np.float64))
        return path, fp

    def test_truncated_tail_is_repaired(self, tmp_path):
        path, fp = self._journal_with_two_shards(tmp_path)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"shard": 2, "payload": {"codec": "nd')
        resumed = open_checkpoint(path, fp, 4, resume=True)
        assert resumed.completed_indices() == [0, 1]
        resumed.record(2, np.arange(8, 12, dtype=np.float64))
        resumed.close()
        # The torn tail was truncated before appending: the repaired
        # journal reads back clean, with the new record after the old.
        assert os.path.getsize(path) > clean_size
        final = open_checkpoint(path, fp, 4, resume=True)
        assert final.completed_indices() == [0, 1, 2]
        final.close()

    def test_corrupt_tail_line_is_dropped(self, tmp_path):
        path, fp = self._journal_with_two_shards(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
        with open_checkpoint(path, fp, 4, resume=True) as resumed:
            assert resumed.completed_indices() == [0, 1]

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path, fp = self._journal_with_two_shards(tmp_path)
        other = run_fingerprint("t", seed=999)
        with pytest.raises(CheckpointError, match="different run"):
            open_checkpoint(path, other, 4, resume=True)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=6)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({
                "schema": "repro.checkpoint/0", "fingerprint": fp,
                "shards": 2, "meta": {},
            }) + "\n")
        with pytest.raises(CheckpointError, match="schema"):
            open_checkpoint(path, fp, 2, resume=True)

    def test_headerless_file_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"torn header with no newline")
        with pytest.raises(CheckpointError, match="header"):
            open_checkpoint(path, run_fingerprint("t"), 2, resume=True)

    def test_resume_on_missing_or_empty_file_starts_fresh(self, tmp_path):
        fp = run_fingerprint("t", seed=7)
        missing = str(tmp_path / "missing.ckpt")
        with open_checkpoint(missing, fp, 2, resume=True) as journal:
            assert journal.resumed == 0
        empty = str(tmp_path / "empty.ckpt")
        open(empty, "wb").close()
        with open_checkpoint(empty, fp, 2, resume=True) as journal:
            assert journal.resumed == 0


class TestCodecHooksAndLifecycle:
    def test_codec_hooks_extract_and_reinstate(self, tmp_path):
        """The shm Monte-Carlo shape: the task value is a row-count ack,
        the journal stores the actual rows, restore writes them home."""
        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=8)
        out = np.zeros((4, 3))
        spans = {0: (0, 2), 1: (2, 4)}

        journal = open_checkpoint(path, fp, 2)
        journal.set_codec(
            encode=lambda i, value: np.array(
                out[spans[i][0]:spans[i][1]], copy=True),
            restore=lambda i, stored: None,
        )
        out[0:2] = np.arange(6).reshape(2, 3)
        journal.record(0, 2)  # task value is just the ack
        journal.close()

        target = np.zeros((4, 3))

        def _restore(i, stored):
            start, stop = spans[i]
            target[start:stop] = stored
            return stop - start

        resumed = open_checkpoint(path, fp, 2, resume=True)
        resumed.set_codec(restore=_restore)
        assert resumed.restore_results(2) == {0: 2}
        resumed.close()
        assert np.array_equal(target[0:2], out[0:2])

    def test_close_open_journals_flushes_everything(self, tmp_path):
        fp = run_fingerprint("t", seed=9)
        journal = open_checkpoint(str(tmp_path / "a.ckpt"), fp, 1)
        journal.record(0, np.zeros(2))
        close_open_journals()
        # Closed: further records drop silently instead of crashing the
        # drain path, and the file reads back complete.
        journal.record(1, np.zeros(2))
        with open_checkpoint(str(tmp_path / "a.ckpt"), fp, 1,
                             resume=True) as resumed:
            assert resumed.completed_indices() == [0]

    def test_counters_track_journal_traffic(self, tmp_path):
        written = counter("resilience_checkpoint_shards_written_total")
        resumed_ctr = counter("resilience_checkpoint_shards_resumed_total")
        nbytes = counter("resilience_checkpoint_bytes_total")
        w0, r0, b0 = written.value, resumed_ctr.value, nbytes.value

        path = str(tmp_path / "run.ckpt")
        fp = run_fingerprint("t", seed=10)
        with open_checkpoint(path, fp, 3) as journal:
            journal.record(0, np.zeros(4))
            journal.record(1, np.ones(4))
        assert written.value == w0 + 2
        assert nbytes.value > b0

        with open_checkpoint(path, fp, 3, resume=True) as journal:
            journal.restore_results(3)
            journal.restore_results(3)  # second call must not double-count
        assert resumed_ctr.value == r0 + 2
