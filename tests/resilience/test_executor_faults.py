"""Every injectable fault point drives its recovery path.

Worker-side faults (kill/hang/malformed) exploit fork inheritance: each
freshly forked worker inherits the armed schedule's *unfired* state, so
a ``times=1`` rule re-fires in every new worker, retries exhaust, and
degrade-to-serial is the deterministic recovery rung these tests pin.
Whatever the injected failure, the results must equal the serial
reference bit for bit.
"""

import numpy as np
import pytest

from repro.circuit.rctree import RCTree
from repro.core.variation import VariationModel, monte_carlo_delay_matrix
from repro.obs.metrics import counter, histogram
from repro.parallel import available_backends, run_sharded
from repro.parallel.executor import _retry_backoff_delay
from repro.resilience.faults import install_faults

needs_process = pytest.mark.skipif(
    "process" not in available_backends(),
    reason="no process backend on this host",
)
needs_shm = pytest.mark.skipif(
    "shm" not in available_backends(),
    reason="no shared-memory backend on this host",
)


def _double(x):
    return 2 * x


def chain_tree(n=6):
    tree = RCTree("n0")
    for i in range(1, n):
        tree.add_node(f"n{i}", f"n{i - 1}", 1.0, 1.0)
    return tree


PAYLOADS = list(range(4))
EXPECTED = [_double(x) for x in PAYLOADS]


class TestWorkerFaults:
    @needs_process
    def test_worker_kill_degrades_to_serial_with_correct_results(self):
        degraded = counter("parallel_degraded_total")
        backoff = histogram("parallel_retry_backoff_seconds")
        d0, b0 = degraded.value, backoff.count
        install_faults("worker.kill")
        out = run_sharded(_double, PAYLOADS, jobs=2, backend="process",
                          retries=1, retry_backoff=0.001)
        assert out == EXPECTED
        assert degraded.value >= d0 + len(PAYLOADS)
        # A retry wave ran, so the deterministic backoff was observed.
        assert backoff.count > b0

    @needs_process
    def test_worker_hang_times_out_then_degrades(self):
        timeouts = counter("parallel_timeouts_total")
        t0 = timeouts.value
        install_faults("worker.hang:delay=5")
        out = run_sharded(_double, PAYLOADS, jobs=2, backend="process",
                          timeout=0.3, retries=0, retry_backoff=0.0)
        assert out == EXPECTED
        assert timeouts.value > t0

    @needs_process
    def test_malformed_result_rejected_then_degrades(self):
        malformed = counter("parallel_malformed_results_total")
        m0 = malformed.value
        install_faults("result.malformed:times=inf")
        out = run_sharded(_double, PAYLOADS, jobs=2, backend="process",
                          retries=0, retry_backoff=0.0)
        assert out == EXPECTED
        assert malformed.value >= m0 + len(PAYLOADS)

    @needs_process
    def test_pool_fork_refusal_degrades_every_shard(self):
        degraded = counter("parallel_degraded_total")
        injected = counter("resilience_faults_injected_total")
        d0, i0 = degraded.value, injected.value
        install_faults("pool.fork")
        out = run_sharded(_double, PAYLOADS, jobs=2, backend="process",
                          retries=1, retry_backoff=0.0)
        assert out == EXPECTED
        assert degraded.value == d0 + len(PAYLOADS)
        assert injected.value > i0  # fired parent-side, so visible here

    def test_shard_slow_on_serial_backend_changes_nothing(self):
        schedule = install_faults("shard.slow:times=inf,delay=0")
        out = run_sharded(_double, PAYLOADS, backend="serial")
        assert out == EXPECTED
        assert schedule.fired("shard.slow") == len(PAYLOADS)


class TestShmFaults:
    """shm transport faults make the Monte-Carlo path fall back
    (shm -> process/serial) and still return the same bits."""

    def _mc(self, **kwargs):
        return monte_carlo_delay_matrix(
            chain_tree(), VariationModel(0.1, 0.1), samples=40, seed=3,
            **kwargs,
        )

    @pytest.fixture()
    def reference(self):
        return self._mc(backend="serial")

    @needs_shm
    @pytest.mark.parametrize("point", ["shm.publish", "shm.attach",
                                       "shm.unlink"])
    def test_shm_fault_falls_back_bit_identically(self, point, reference):
        fallback = counter("parallel_shm_fallback_total")
        f0 = fallback.value
        install_faults(point)
        out = self._mc(backend="shm")
        assert fallback.value > f0
        assert np.array_equal(out, reference)

    @needs_shm
    def test_shm_without_faults_matches_serial(self, reference):
        out = self._mc(backend="shm")
        assert np.array_equal(out, reference)


class TestRetryBackoff:
    def test_backoff_is_deterministic(self):
        a = _retry_backoff_delay(0.05, 1, "verify.parallel_run")
        b = _retry_backoff_delay(0.05, 1, "verify.parallel_run")
        assert a == b

    def test_backoff_doubles_per_wave_with_bounded_jitter(self):
        for wave in (1, 2, 3):
            delay = _retry_backoff_delay(0.05, wave, "label")
            base = 0.05 * 2.0 ** (wave - 1)
            assert base <= delay <= 2.0 * base

    def test_backoff_caps_at_two_seconds(self):
        assert _retry_backoff_delay(0.05, 50, "label") == 2.0

    def test_labels_desynchronize(self):
        assert _retry_backoff_delay(0.05, 1, "a") != \
            _retry_backoff_delay(0.05, 1, "b")

    def test_negative_backoff_rejected(self):
        from repro._exceptions import ValidationError
        with pytest.raises(ValidationError):
            run_sharded(_double, PAYLOADS, retry_backoff=-0.1)
