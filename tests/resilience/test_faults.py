"""The deterministic fault-injection layer: spec grammar, schedules,
activation plumbing, and the determinism contract (same seed + same
check sequence -> same injected faults -> same counters)."""

import pytest

from repro._exceptions import ValidationError
from repro.obs.metrics import counter
from repro.resilience.faults import (
    ENV_SEED,
    ENV_SPEC,
    FAULT_POINTS,
    FaultRule,
    FaultSchedule,
    active_schedule,
    check,
    clear_faults,
    install_faults,
    parse_fault_spec,
    reset,
)


class TestSpecGrammar:
    def test_single_point_defaults(self):
        (rule,) = parse_fault_spec("worker.kill")
        assert rule.point == "worker.kill"
        assert rule.probability == 1.0
        assert rule.times == 1
        assert rule.after == 0

    def test_full_parameterization(self):
        (rule,) = parse_fault_spec(
            "shard.slow:p=0.25,times=inf,after=3,delay=0.02"
        )
        assert rule.probability == 0.25
        assert rule.times is None
        assert rule.after == 3
        assert rule.delay == 0.02

    def test_param_aliases(self):
        (rule,) = parse_fault_spec("worker.hang:probability=0.5,n=7")
        assert rule.probability == 0.5
        assert rule.times == 7

    def test_multiple_clauses(self):
        rules = parse_fault_spec("worker.kill:times=2;shm.publish")
        assert [r.point for r in rules] == ["worker.kill", "shm.publish"]

    @pytest.mark.parametrize("spec", [
        "no.such.point",
        "worker.kill:bogus=1",
        "worker.kill:p",
        "worker.kill:p=notafloat",
        "worker.kill:times=1.5",
        "",
        ";;",
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_fault_spec(spec)

    @pytest.mark.parametrize("kwargs", [
        {"probability": -0.1},
        {"probability": 1.5},
        {"times": -1},
        {"after": -1},
        {"delay": -0.5},
        {"delay": float("nan")},
    ])
    def test_rule_bounds_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultRule(point="worker.kill", **kwargs)

    def test_every_compiled_point_parses(self):
        rules = parse_fault_spec(";".join(FAULT_POINTS))
        assert [r.point for r in rules] == list(FAULT_POINTS)


class TestScheduleDeterminism:
    def test_same_seed_same_decisions(self):
        spec = "shard.slow:p=0.5,times=inf"
        a = FaultSchedule(spec, seed=7)
        b = FaultSchedule(spec, seed=7)
        decisions_a = [a.check("shard.slow") is not None
                       for _ in range(50)]
        decisions_b = [b.check("shard.slow") is not None
                       for _ in range(50)]
        assert decisions_a == decisions_b
        assert a.fired() == b.fired() > 0

    def test_different_seed_different_decisions(self):
        spec = "shard.slow:p=0.5,times=inf"
        a = FaultSchedule(spec, seed=1)
        b = FaultSchedule(spec, seed=2)
        decisions_a = [a.check("shard.slow") is not None
                       for _ in range(100)]
        decisions_b = [b.check("shard.slow") is not None
                       for _ in range(100)]
        assert decisions_a != decisions_b

    def test_point_streams_independent(self):
        """A point's decisions only depend on (seed, point) — arming
        extra rules must not perturb them."""
        alone = FaultSchedule("shard.slow:p=0.5,times=inf", seed=3)
        paired = FaultSchedule(
            "worker.kill:p=0.5,times=inf;shard.slow:p=0.5,times=inf",
            seed=3,
        )
        for _ in range(10):
            paired.check("worker.kill")  # interleave the other stream
        decisions_alone = [alone.check("shard.slow") is not None
                           for _ in range(40)]
        decisions_paired = [paired.check("shard.slow") is not None
                            for _ in range(40)]
        assert decisions_alone == decisions_paired

    def test_times_budget_caps_activations(self):
        schedule = FaultSchedule("worker.kill:times=2", seed=0)
        fired = sum(schedule.check("worker.kill") is not None
                    for _ in range(10))
        assert fired == 2
        assert schedule.fired("worker.kill") == 2

    def test_after_skips_leading_checks(self):
        schedule = FaultSchedule("worker.kill:after=3,times=inf", seed=0)
        decisions = [schedule.check("worker.kill") is not None
                     for _ in range(6)]
        assert decisions == [False, False, False, True, True, True]

    def test_unarmed_point_is_never_hit(self):
        schedule = FaultSchedule("worker.kill", seed=0)
        assert schedule.check("shm.publish") is None
        assert schedule.rule("shm.publish") is None

    def test_counters_track_firings(self):
        injected = counter("resilience_faults_injected_total")
        labeled = injected.labels(point="result.malformed")
        before_total, before_point = injected.value, labeled.value
        schedule = install_faults("result.malformed:times=3")
        for _ in range(5):
            check("result.malformed")
        assert schedule.fired() == 3
        assert injected.value == before_total + 3
        assert labeled.value == before_point + 3


class TestActivation:
    def test_install_and_clear(self):
        schedule = install_faults("worker.kill")
        assert active_schedule() is schedule
        assert check("worker.kill") is not None
        clear_faults()
        assert active_schedule() is None
        assert check("worker.kill") is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(ENV_SPEC, "shard.slow:times=inf,delay=0")
        monkeypatch.setenv(ENV_SEED, "11")
        reset()  # drop the once-per-process latch so env is re-read
        schedule = active_schedule()
        assert schedule is not None
        assert schedule.seed == 11
        assert schedule.points == ["shard.slow"]

    def test_malformed_env_spec_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_SPEC, "no.such.point")
        reset()
        assert active_schedule() is None

    def test_install_exports_env(self, monkeypatch):
        monkeypatch.delenv(ENV_SPEC, raising=False)
        install_faults("worker.hang:delay=0", seed=5, export_env=True)
        import os
        assert os.environ[ENV_SPEC] == "worker.hang:delay=0"
        assert os.environ[ENV_SEED] == "5"
        clear_faults()
        assert ENV_SPEC not in os.environ
