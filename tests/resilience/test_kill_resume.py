"""Kill a checkpointed run at a randomized shard boundary, resume it,
and demand bit-identity with the uninterrupted run.

The headline scenario SIGKILLs a real subprocess mid-sweep (the fault
layer's ``shard.slow`` — armed through the ``REPRO_FAULTS`` environment
variable, exactly as the chaos CI job arms it — widens the window
between journal appends so the kill lands at a shard boundary with
near-certainty).  The journal is then resumed in-process, on both the
serial and shm backends: a ``repro.checkpoint/1`` journal stores actual
row blocks, so it is backend-portable by construction.
"""

import os
import random
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.circuit.rctree import RCTree
from repro.core.variation import VariationModel, monte_carlo_delay_matrix
from repro.core.verification import verify_corpus
from repro.obs.metrics import counter
from repro.parallel import available_backends
from repro.sta import Design, analyze, default_library

SAMPLES = 48
SEED = 7
SHARD_SIZE = 6  # -> 8 shards, plan independent of worker count

#: Kill points (journal records completed before SIGKILL), drawn once
#: from a seeded stream — "randomized shard boundary" without run-to-run
#: flakiness.
KILL_POINTS = sorted(random.Random(20260807).sample(range(1, 7), 2))

_CHILD = """
import sys
from repro.circuit.rctree import RCTree
from repro.core.variation import VariationModel, monte_carlo_delay_matrix

tree = RCTree("n0")
for i in range(1, 6):
    tree.add_node(f"n{i}", f"n{i-1}", 1.0, 1.0)
monte_carlo_delay_matrix(
    tree, VariationModel(0.1, 0.1), %(samples)d, seed=%(seed)d,
    shard_size=%(shard_size)d, backend="serial",
    checkpoint_path=sys.argv[1],
)
""" % {"samples": SAMPLES, "seed": SEED, "shard_size": SHARD_SIZE}


def chain_tree(n=6, r=1.0):
    tree = RCTree("n0")
    for i in range(1, n):
        tree.add_node(f"n{i}", f"n{i - 1}", r, 1.0)
    return tree


def _journal_records(path):
    if not os.path.exists(path):
        return 0
    with open(path, "rb") as handle:
        lines = handle.read().count(b"\n")
    return max(lines - 1, 0)  # minus the header


def _run_child_and_kill(path, kill_after, deadline=60.0):
    """Start the checkpointed sweep in a subprocess and SIGKILL it once
    ``kill_after`` shards are journaled.  Returns the journaled count."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    # Slow every shard down through the env activation path — the same
    # arming mechanism the chaos CI job uses — so the kill window
    # between journal appends is wide.
    env["REPRO_FAULTS"] = "shard.slow:times=inf,delay=0.1"
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, path],
        env=env, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        start = time.monotonic()
        while time.monotonic() - start < deadline:
            if _journal_records(path) >= kill_after:
                break
            if child.poll() is not None:
                break
            time.sleep(0.002)
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:  # pragma: no cover - defensive
            child.kill()
            child.wait()
    return _journal_records(path)


class TestSubprocessKillResume:
    @pytest.fixture(scope="class")
    def reference(self):
        return monte_carlo_delay_matrix(
            chain_tree(), VariationModel(0.1, 0.1), SAMPLES, seed=SEED,
            shard_size=SHARD_SIZE, backend="serial",
        )

    @pytest.mark.parametrize("kill_after", KILL_POINTS)
    def test_sigkill_then_serial_resume_is_bit_identical(
            self, tmp_path, reference, kill_after):
        path = str(tmp_path / "mc.ckpt")
        journaled = _run_child_and_kill(path, kill_after)
        assert journaled >= 1  # the child checkpointed before dying

        resumed_ctr = counter(
            "resilience_checkpoint_shards_resumed_total"
        )
        r0 = resumed_ctr.value
        out = monte_carlo_delay_matrix(
            chain_tree(), VariationModel(0.1, 0.1), SAMPLES, seed=SEED,
            shard_size=SHARD_SIZE, backend="serial",
            checkpoint_path=path, resume=True,
        )
        assert np.array_equal(out, reference)
        # Resumed shards were restored from the journal, not recomputed.
        assert resumed_ctr.value >= r0 + min(journaled, 1)

    @pytest.mark.skipif("shm" not in available_backends(),
                        reason="no shared-memory backend on this host")
    def test_serial_journal_resumes_under_shm_backend(self, tmp_path,
                                                      reference):
        """Backend portability: a journal written under ``serial``
        resumes bit-identically under ``shm`` (the journal stores row
        blocks, not transport acks)."""
        path = str(tmp_path / "mc.ckpt")
        journaled = _run_child_and_kill(path, KILL_POINTS[0])
        assert journaled >= 1
        out = monte_carlo_delay_matrix(
            chain_tree(), VariationModel(0.1, 0.1), SAMPLES, seed=SEED,
            shard_size=SHARD_SIZE, backend="shm",
            checkpoint_path=path, resume=True,
        )
        assert np.array_equal(out, reference)


class TestVerifyCorpusResume:
    """The object-payload (pickle codec) path: simulate the kill by
    truncating a complete journal back to its first K records."""

    def _corpus(self):
        return [chain_tree(4, r=1.0), chain_tree(4, r=2.0),
                chain_tree(5, r=1.5)]

    def test_truncated_journal_resume_matches_full_run(self, tmp_path):
        path = str(tmp_path / "corpus.ckpt")
        full = verify_corpus(self._corpus(), samples=301, shard_size=1,
                             checkpoint_path=path)

        with open(path, "rb") as handle:
            lines = handle.readlines()
        assert len(lines) == 1 + 3  # header + one record per shard
        with open(path, "wb") as handle:
            handle.writelines(lines[:2])  # keep header + shard 0 only

        resumed = verify_corpus(self._corpus(), samples=301,
                                shard_size=1, checkpoint_path=path,
                                resume=True)
        assert resumed == full
        assert all(v.all_hold for v in resumed)


class TestStaCheckpoint:
    def _design(self):
        lib = default_library()
        d = Design("chain", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u1", "INV")
        d.add_instance("u2", "INV")
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("n1", ("u1", "y"), [("u2", "a")])
        d.connect("nz", ("u2", "y"), [("@port", "z")])
        return d

    def test_full_journal_resume_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "sta.ckpt")
        first = analyze(self._design(), checkpoint_path=path)

        resumed_ctr = counter(
            "resilience_checkpoint_shards_resumed_total"
        )
        r0 = resumed_ctr.value
        second = analyze(self._design(), checkpoint_path=path,
                         resume=True)
        assert resumed_ctr.value > r0
        assert second.arrival == first.arrival
        assert second.slew == first.slew
        assert second.critical_delay == first.critical_delay
