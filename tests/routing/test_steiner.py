"""Unit tests for the rectilinear routing substrate."""

import numpy as np
import pytest

from repro._exceptions import RoutingError
from repro.core import elmore_delay
from repro.routing import (
    manhattan,
    one_steiner_refinement,
    rectilinear_mst,
    route_net,
    total_wire_length,
)


class TestManhattanAndMST:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7.0
        assert manhattan((1, 1), (1, 1)) == 0.0

    def test_mst_is_spanning_tree(self):
        points = [(0, 0), (1, 0), (1, 2), (4, 2), (0, 3)]
        tree = rectilinear_mst(points)
        assert tree.number_of_nodes() == 5
        assert tree.number_of_edges() == 4

    def test_mst_collinear_chain(self):
        points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
        tree = rectilinear_mst(points)
        assert total_wire_length(tree) == pytest.approx(3.0)

    def test_mst_needs_two_points(self):
        with pytest.raises(RoutingError):
            rectilinear_mst([(0, 0)])


class TestSteinerRefinement:
    def test_classic_three_pin_improvement(self):
        """Three corner pins: the Hanan point saves wirelength."""
        points = [(0.0, 0.0), (2.0, 0.0), (0.0, 2.0), (2.0, 2.0)]
        base = total_wire_length(rectilinear_mst(points))
        refined_points, refined = one_steiner_refinement(points)
        assert total_wire_length(refined) <= base

    def test_l_shaped_pins_gain(self):
        points = [(0.0, 0.0), (10.0, 1.0), (1.0, 10.0)]
        base = total_wire_length(rectilinear_mst(points))
        _, refined = one_steiner_refinement(points)
        assert total_wire_length(refined) < base

    def test_no_gain_on_collinear(self):
        points = [(0.0, 0.0), (5.0, 0.0), (9.0, 0.0)]
        refined_points, refined = one_steiner_refinement(points)
        assert len(refined_points) == 3  # nothing added

    def test_originals_preserved_in_order(self):
        points = [(0.0, 0.0), (10.0, 1.0), (1.0, 10.0)]
        refined_points, _ = one_steiner_refinement(points)
        assert refined_points[:3] == points


class TestRouteNet:
    def test_basic_routing(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(500e-6, 0.0), (0.0, 300e-6)],
            driver_resistance=200.0,
        )
        tree.validate()
        assert len(sinks) == 2
        for node in sinks:
            assert node in tree

    def test_closer_sink_has_smaller_elmore(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(100e-6, 0.0), (2000e-6, 0.0)],
            driver_resistance=200.0,
        )
        assert elmore_delay(tree, sinks[0]) < elmore_delay(tree, sinks[1])

    def test_pin_loads_slow_the_net(self):
        kwargs = dict(
            driver_position=(0.0, 0.0),
            sink_positions=[(500e-6, 0.0)],
            driver_resistance=200.0,
        )
        bare, s_bare = route_net(**kwargs)
        loaded, s_loaded = route_net(pin_loads=[50e-15], **kwargs)
        assert elmore_delay(loaded, s_loaded[0]) > \
            elmore_delay(bare, s_bare[0])

    def test_steiner_routing_runs(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(10e-6, 500e-6), (500e-6, 10e-6),
                            (500e-6, 500e-6)],
            driver_resistance=150.0,
            use_steiner=True,
        )
        tree.validate()
        assert len(sinks) == 3

    def test_coincident_pins_handled(self):
        tree, sinks = route_net(
            driver_position=(0.0, 0.0),
            sink_positions=[(0.0, 0.0)],  # sink on top of the driver
            driver_resistance=100.0,
        )
        tree.validate()
        assert sinks[0] in tree

    def test_validation(self):
        with pytest.raises(RoutingError):
            route_net((0, 0), [], 100.0)
        with pytest.raises(RoutingError):
            route_net((0, 0), [(1e-6, 0)], 100.0, pin_loads=[1e-15, 2e-15])

    def test_wire_width_tradeoff(self):
        """Wider wire: less resistance, more capacitance. For a long net
        behind a weak driver the capacitance term wins; behind a strong
        driver the resistance term wins."""
        common = dict(
            driver_position=(0.0, 0.0),
            sink_positions=[(3000e-6, 0.0)],
        )
        weak_narrow, s = route_net(
            driver_resistance=5000.0, wire_width=0.6e-6, **common
        )
        weak_wide, _ = route_net(
            driver_resistance=5000.0, wire_width=4e-6, **common
        )
        # Weak driver: wide wire's extra cap dominates -> slower.
        assert elmore_delay(weak_wide, s[0]) > elmore_delay(weak_narrow, s[0])
        strong_narrow, _ = route_net(
            driver_resistance=20.0, wire_width=0.6e-6, **common
        )
        strong_wide, _ = route_net(
            driver_resistance=20.0, wire_width=4e-6, **common
        )
        assert elmore_delay(strong_wide, s[0]) < \
            elmore_delay(strong_narrow, s[0])
