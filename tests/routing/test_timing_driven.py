"""Tests for timing-driven routing."""

import pytest

from repro._exceptions import RoutingError
from repro.analysis import measure_delay
from repro.core import elmore_delay
from repro.routing import route_net, route_net_timing_driven

UM = 1e-6

DRIVER = (0.0, 0.0)
# One critical sink far away, two cheap sinks clustered near the far one —
# a wirelength route detours the critical sink through the cluster.
SINKS = [(1500 * UM, 0.0), (1400 * UM, 300 * UM), (1350 * UM, 380 * UM)]
LOADS = [15e-15, 8e-15, 8e-15]


class TestBasics:
    def test_never_worse_than_wirelength_route(self):
        result = route_net_timing_driven(
            DRIVER, SINKS, driver_resistance=200.0,
            pin_loads=LOADS,
        )
        assert result.objective <= result.wirelength_objective * (1 + 1e-12)
        result.tree.validate()
        assert len(result.sink_nodes) == 3

    def test_criticality_shifts_the_route(self):
        """A heavily weighted critical sink gets a faster path than under
        uniform weighting."""
        uniform = route_net_timing_driven(
            DRIVER, SINKS, 200.0, sink_criticalities=[1.0, 1.0, 1.0],
            pin_loads=LOADS,
        )
        skewed = route_net_timing_driven(
            DRIVER, SINKS, 200.0, sink_criticalities=[50.0, 0.1, 0.1],
            pin_loads=LOADS,
        )
        t_uniform = elmore_delay(uniform.tree, uniform.sink_nodes[0])
        t_skewed = elmore_delay(skewed.tree, skewed.sink_nodes[0])
        assert t_skewed <= t_uniform * (1 + 1e-12)

    def test_objective_matches_weighted_elmore(self):
        weights = [3.0, 1.0, 0.5]
        result = route_net_timing_driven(
            DRIVER, SINKS, 200.0, sink_criticalities=weights,
            pin_loads=LOADS,
        )
        recomputed = sum(
            w * elmore_delay(result.tree, node)
            for w, node in zip(weights, result.sink_nodes)
        )
        assert result.objective == pytest.approx(recomputed, rel=1e-12)

    def test_improvement_property(self):
        result = route_net_timing_driven(
            DRIVER, SINKS, 200.0,
            sink_criticalities=[50.0, 0.1, 0.1], pin_loads=LOADS,
        )
        assert 0.0 <= result.improvement < 1.0
        if result.moves > 0:
            assert result.improvement > 0.0

    def test_exact_delay_tracks_elmore_gain(self):
        """When the optimizer improves the critical sink's Elmore delay
        meaningfully, the exact delay improves too."""
        uniform = route_net_timing_driven(
            DRIVER, SINKS, 200.0, pin_loads=LOADS,
            sink_criticalities=[1.0, 1.0, 1.0],
        )
        skewed = route_net_timing_driven(
            DRIVER, SINKS, 200.0, pin_loads=LOADS,
            sink_criticalities=[50.0, 0.1, 0.1],
        )
        e_uniform = elmore_delay(uniform.tree, uniform.sink_nodes[0])
        e_skewed = elmore_delay(skewed.tree, skewed.sink_nodes[0])
        if e_skewed < e_uniform * 0.95:
            a_uniform = measure_delay(uniform.tree, uniform.sink_nodes[0])
            a_skewed = measure_delay(skewed.tree, skewed.sink_nodes[0])
            assert a_skewed < a_uniform


class TestValidation:
    def test_empty_sinks(self):
        with pytest.raises(RoutingError):
            route_net_timing_driven(DRIVER, [], 200.0)

    def test_weight_length_mismatch(self):
        with pytest.raises(RoutingError):
            route_net_timing_driven(
                DRIVER, SINKS, 200.0, sink_criticalities=[1.0]
            )

    def test_negative_weight(self):
        with pytest.raises(RoutingError):
            route_net_timing_driven(
                DRIVER, SINKS, 200.0,
                sink_criticalities=[1.0, -1.0, 1.0],
            )

    def test_load_length_mismatch(self):
        with pytest.raises(RoutingError):
            route_net_timing_driven(
                DRIVER, SINKS, 200.0, pin_loads=[1e-15]
            )

    def test_single_sink(self):
        result = route_net_timing_driven(
            DRIVER, [SINKS[0]], 200.0, pin_loads=[LOADS[0]]
        )
        assert len(result.sink_nodes) == 1
        result.tree.validate()
