"""End-to-end HTTP tests against an in-process server thread.

One module-scoped server handles every request-shape test (startup
forks nothing — jobs default to in-process sweeps), so the suite stays
fast while covering the full request -> batcher -> engine -> response
path, the error contract, and the observability surface.
"""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import delay_bounds, transfer_moments
from repro.serve import ServeConfig, ServerThread
from repro.signals import SaturatedRamp
from repro.workloads import fig1_tree


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServeConfig(port=0, batch_window=0.001,
                                  manage_pool=False)) as thread:
        yield thread


def _post(url, path, payload):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=10.0) as response:
        return response.status, response.read()


class TestStatsEndpoint:
    def test_matches_direct_library_evaluation(self, server):
        status, body = _post(server.url, "/v1/stats",
                             {"workload": "fig1"})
        assert status == 200
        tree = fig1_tree()
        moments = transfer_moments(tree, 3)
        for node in tree.node_names:
            bounds = delay_bounds(tree, node, moments=moments)
            served = body["nodes"][node]
            assert served["elmore"] == pytest.approx(moments.mean(node),
                                                     rel=0, abs=0)
            assert served["upper"] == bounds.upper
            assert served["lower"] == bounds.lower

    def test_generalized_signal(self, server):
        status, body = _post(
            server.url, "/v1/stats",
            {"workload": "fig1", "signal": "ramp:2ns", "nodes": ["n5"]},
        )
        assert status == 200
        assert list(body["nodes"]) == ["n5"]
        bounds = delay_bounds(fig1_tree(), "n5",
                              signal=SaturatedRamp(2e-9))
        assert body["nodes"]["n5"]["upper"] == bounds.upper
        assert body["nodes"]["n5"]["lower"] == bounds.lower

    def test_multi_row_request(self, server):
        status, body = _post(
            server.url, "/v1/stats",
            {"workload": "fig1", "rscale": [1.0, 2.0], "nodes": ["n5"]},
        )
        assert status == 200
        assert body["rows"] == 2
        elmore = body["nodes"]["n5"]["elmore"]
        # Scaling every resistance scales every RC product linearly.
        assert elmore[1] == pytest.approx(2.0 * elmore[0])

    def test_inline_tree(self, server):
        status, body = _post(server.url, "/v1/stats", {
            "tree": {
                "input": "in",
                "nodes": [
                    {"name": "out", "parent": "in", "r": 1000.0,
                     "c": 1e-12},
                ],
            },
        })
        assert status == 200
        assert body["nodes"]["out"]["elmore"] == pytest.approx(1e-9)

    def test_concurrent_identical_requests_coalesce_bit_identically(
        self, server
    ):
        """N concurrent same-topology requests run as fewer than N
        sweeps and return bit-identical payloads to a serial request."""
        from repro.obs.metrics import counter

        solo = _post(server.url, "/v1/stats",
                     {"workload": "tree25", "rscale": 1.25})[1]
        batches_before = counter("serve_batches_total").value
        coalesced_before = counter("serve_coalesced_total").value
        n = 8
        with ThreadPoolExecutor(max_workers=n) as pool:
            payloads = list(pool.map(
                lambda _: _post(server.url, "/v1/stats",
                                {"workload": "tree25", "rscale": 1.25}),
                range(n),
            ))
        assert all(status == 200 for status, _ in payloads)
        for _status, body in payloads:
            assert body["nodes"] == solo["nodes"]  # exact JSON equality
        sweeps = counter("serve_batches_total").value - batches_before
        coalesced = counter("serve_coalesced_total").value - \
            coalesced_before
        assert sweeps < n
        assert coalesced >= n - sweeps
        assert any(body["batch"]["coalesced"]
                   for _status, body in payloads)


class TestVerifyEndpoint:
    def test_verify_fig1(self, server):
        status, body = _post(
            server.url, "/v1/verify",
            {"workload": "fig1", "samples": 401, "nodes": ["n5"]},
        )
        assert status == 200
        assert body["all_hold"] is True
        node = body["nodes"]["n5"]
        assert node["upper_bound_holds"] and node["lower_bound_holds"]
        assert node["elmore"] > node["actual_delay"] > 0


class TestStaEndpoint:
    def test_sta_round_trip(self, server):
        status, body = _post(
            server.url, "/v1/sta",
            {"layers": 3, "width": 4, "seed": 1},
        )
        assert status == 200
        assert body["critical_delay"] > 0
        path = body["critical_path"]
        assert path[-1]["arrival"] == pytest.approx(
            body["critical_delay"]
        )
        arrivals = [element["arrival"] for element in path]
        assert arrivals == sorted(arrivals)


class TestSstaEndpoint:
    def test_ssta_round_trip(self, server):
        status, body = _post(
            server.url, "/v1/ssta",
            {"layers": 3, "width": 4, "seed": 1, "required": 1.0},
        )
        assert status == 200
        assert body["critical"]["sigma"] > 0
        assert body["critical"]["corners"]["3s"] == pytest.approx(
            body["critical"]["mean"] + 3 * body["critical"]["sigma"]
        )
        assert sum(
            out["criticality"] for out in body["outputs"].values()
        ) == pytest.approx(1.0)
        # A 1-second requirement is unmeetable to miss: full yield.
        assert body["yield"] == pytest.approx(1.0)
        assert body["fail_probability"] == pytest.approx(0.0, abs=1e-12)

    def test_ssta_matches_direct_library_evaluation(self, server):
        from repro.core.variation import VariationModel
        from repro.sta.ssta import ProcessModel, analyze_ssta
        from repro.workloads import random_design

        status, body = _post(
            server.url, "/v1/ssta",
            {"layers": 3, "width": 4, "seed": 2, "rsigma": 0.1,
             "correlation": 0.4},
        )
        assert status == 200
        report = analyze_ssta(
            random_design(layers=3, width=4, seed=2),
            ProcessModel(
                VariationModel(resistance_sigma=0.1,
                               capacitance_sigma=0.08),
                rho_r=0.4, rho_c=0.4, cell_sigma=0.05, rho_cell=0.4,
            ),
        )
        assert body["critical"]["mean"] == report.critical.mu
        assert body["critical"]["sigma"] == report.critical.sigma

    def test_ssta_monte_carlo_cross_check(self, server):
        status, body = _post(
            server.url, "/v1/ssta",
            {"layers": 3, "width": 4, "samples": 1500},
        )
        assert status == 200
        mc = body["monte_carlo"]
        assert mc["samples"] == 1500
        assert mc["within_tolerance"] is True
        assert mc["max_mean_rel_err"] <= 0.01
        assert mc["max_sigma_rel_err"] <= 0.05

    def test_ssta_validation_errors(self, server):
        status, body = _post(server.url, "/v1/ssta",
                             {"correlation": 1.5})
        assert status == 400
        assert "correlation" in body["error"]["message"]
        status, body = _post(server.url, "/v1/ssta", {"bogus": 1})
        assert status == 400
        assert "unknown" in body["error"]["message"]


class TestErrorContract:
    @pytest.mark.parametrize("payload,fragment", [
        ({"workload": "nope"}, "unknown workload"),
        ({"workload": "fig1", "rscale": -1.0}, "finite and > 0"),
        ({"workload": "fig1", "bogus": True}, "unknown"),
        ({}, "workload"),
    ])
    def test_validation_errors_are_400_json(self, server, payload,
                                            fragment):
        status, body = _post(server.url, "/v1/stats", payload)
        assert status == 400
        assert fragment in body["error"]["message"]
        assert "Traceback" not in body["error"]["message"]

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/stats", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/v1/nope", timeout=10.0)
        assert err.value.code == 404

    def test_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/v1/stats",
                                   timeout=10.0)  # GET
        assert err.value.code == 405
        status, _body = _post(server.url, "/healthz", {})
        assert status == 405

    def test_deadline_expiry_is_504(self, server):
        status, body = _post(
            server.url, "/v1/verify",
            {"workload": "tree25", "timeout_ms": 1},
        )
        assert status == 504
        assert "deadline" in body["error"]["message"]


class TestObservabilitySurface:
    def test_healthz(self, server):
        status, body = _get(server.url, "/healthz")
        assert (status, body) == (200, b"ok\n")

    def test_metrics_exposes_serve_series(self, server):
        _post(server.url, "/v1/stats", {"workload": "fig1"})
        status, body = _get(server.url, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        for name in ("serve_requests_total", "serve_batches_total",
                     "serve_batch_size", "serve_inflight",
                     "serve_draining"):
            assert name in text
        assert 'endpoint="/v1/stats",status="200"' in text

    def test_spans(self, server):
        status, body = _get(server.url, "/spans")
        assert status == 200
        payload = json.loads(body)
        assert set(payload) == {"tracing", "spans"}

    def test_unmatched_paths_share_one_metric_label(self, server):
        """Scanner traffic must not grow label cardinality: unmatched
        routes all fold into endpoint="unknown"."""
        for path in ("/v1/scanner-probe-a", "/v1/scanner-probe-b"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + path, timeout=10.0)
            assert err.value.code == 404
        text = _get(server.url, "/metrics")[1].decode("utf-8")
        assert 'endpoint="unknown",status="404"' in text
        assert "scanner-probe" not in text


class TestInternalErrorMapping:
    def test_server_side_repro_error_is_500_not_400(self):
        """A ReproError from the engine/batcher internals is a server
        fault; only the 4xx-worthy subclasses may blame the client."""
        import asyncio

        from repro._exceptions import ReproError
        from repro.serve.app import ReproServer, ServeConfig

        async def main():
            srv = ReproServer(ServeConfig(manage_pool=False))
            try:
                async def broken_submit(key, request, timeout=None):
                    raise ReproError(
                        "evaluator returned 1 results for 2 requests"
                    )

                srv.batcher.submit = broken_submit
                body = json.dumps({"workload": "fig1"}).encode("utf-8")
                status, (payload, _type) = await srv._dispatch_route(
                    "POST", "/v1/stats", body
                )
                return status, json.loads(payload)
            finally:
                srv._sweep_executor.shutdown(wait=False)
                srv._aux_executor.shutdown(wait=False)

        status, payload = asyncio.run(main())
        assert status == 500
        assert payload["error"]["message"] == "internal server error"
        assert "evaluator" not in payload["error"]["message"]


class TestAuxBackpressure:
    """Verify/sta requests are bounded: past ``aux_max_queue`` pending
    (queued + executing, including deadline-abandoned work) they get a
    429 instead of piling onto the executor's unbounded queue."""

    @staticmethod
    def _server():
        from repro.serve.app import ReproServer, ServeConfig

        return ReproServer(ServeConfig(manage_pool=False, aux_threads=1,
                                       aux_max_queue=1))

    def test_pending_request_past_bound_is_rejected(self):
        import asyncio
        import threading
        from types import SimpleNamespace

        from repro.serve.batcher import QueueFullError

        release = threading.Event()
        started = threading.Event()

        def slow_eval(request, jobs, backend):
            started.set()
            release.wait(30.0)
            return {"ok": True}

        async def main():
            srv = self._server()
            try:
                first = asyncio.ensure_future(srv._handle_aux(
                    slow_eval, SimpleNamespace(timeout_s=None)
                ))
                while not started.is_set():
                    await asyncio.sleep(0.005)
                with pytest.raises(QueueFullError, match="queue is full"):
                    await srv._handle_aux(
                        slow_eval, SimpleNamespace(timeout_s=None)
                    )
                release.set()
                assert await first == {"ok": True}
            finally:
                release.set()
                srv._sweep_executor.shutdown(wait=False)
                srv._aux_executor.shutdown(wait=True)
            assert srv.aux_pending == 0

        asyncio.run(main())

    def test_deadline_abandoned_work_holds_its_slot(self):
        """A 504'd request keeps executing on its thread; its slot must
        only free when the work finishes, so abandoned jobs cannot
        accumulate without backpressure."""
        import asyncio
        import threading
        from types import SimpleNamespace

        from repro.serve.batcher import (
            DeadlineExpiredError,
            QueueFullError,
        )

        release = threading.Event()

        def slow_eval(request, jobs, backend):
            release.wait(30.0)
            return {"ok": True}

        async def main():
            srv = self._server()
            try:
                with pytest.raises(DeadlineExpiredError):
                    await srv._handle_aux(
                        slow_eval, SimpleNamespace(timeout_s=0.05)
                    )
                assert srv.aux_pending == 1  # still running its thread
                with pytest.raises(QueueFullError):
                    await srv._handle_aux(
                        slow_eval, SimpleNamespace(timeout_s=None)
                    )
                release.set()
                for _ in range(200):
                    if srv.aux_pending == 0:
                        break
                    await asyncio.sleep(0.01)
                assert srv.aux_pending == 0
            finally:
                release.set()
                srv._sweep_executor.shutdown(wait=False)
                srv._aux_executor.shutdown(wait=True)

        asyncio.run(main())


class TestLifecycle:
    def test_graceful_stop_completes_inflight_requests(self):
        """Requests racing shutdown either complete or get a clean
        structured error (503 draining / connection refused) — and the
        server thread always joins."""
        with ServerThread(ServeConfig(port=0, batch_window=0.02,
                                      manage_pool=False)) as thread:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(_post, thread.url, "/v1/stats",
                                {"workload": "fig1"})
                    for _ in range(4)
                ]
                thread.stop()
                statuses = []
                for future in futures:
                    try:
                        statuses.append(future.result()[0])
                    except (urllib.error.URLError, ConnectionError,
                            TimeoutError):
                        statuses.append("refused")
        assert all(code in (200, 503, "refused") for code in statuses)

    def test_two_servers_bind_distinct_ephemeral_ports(self):
        with ServerThread(ServeConfig(port=0, manage_pool=False)) as a, \
                ServerThread(ServeConfig(port=0,
                                         manage_pool=False)) as b:
            assert a.port != b.port
            assert _get(a.url, "/healthz")[0] == 200
            assert _get(b.url, "/healthz")[0] == 200

    def test_taken_port_fails_with_clear_error(self):
        from repro._exceptions import ReproError

        with ServerThread(ServeConfig(port=0, manage_pool=False)) as a:
            clash = ServerThread(ServeConfig(port=a.port,
                                             manage_pool=False))
            with pytest.raises(ReproError, match="failed to start"):
                clash.start()
