"""The coalescing queue: batching, back-pressure, deadlines, faults.

The batcher is asyncio code; each test runs its scenario to completion
through ``asyncio.run`` so the suite stays free of event-loop plugins.
"""

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.batcher import (
    Batcher,
    DeadlineExpiredError,
    DrainingError,
    QueueFullError,
)


_PARENT = os.getpid()


def _die_in_worker(x):
    """Kill the hosting pool worker; behave when run in the parent
    (the ``_PARENT`` pid trick from ``tests/parallel``)."""
    if os.getpid() != _PARENT:
        os._exit(1)
    return x + 100


class RecordingEvaluator:
    """Counts batches; optionally blocks or fails on command."""

    def __init__(self, delay=0.0, gate=None):
        self.batches = []
        self.delay = delay
        self.gate = gate  # threading.Event the evaluation waits on
        self.fail_keys = set()

    def __call__(self, key, requests):
        self.batches.append((key, list(requests)))
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0)
        if self.delay:
            time.sleep(self.delay)
        if key in self.fail_keys:
            raise RuntimeError(f"injected failure for {key}")
        return [f"{key}:{request}" for request in requests]


def run_batcher(coro_factory, **batcher_kwargs):
    """Drive one batcher scenario to completion on a fresh loop."""

    async def main():
        evaluator = batcher_kwargs.pop("evaluator", RecordingEvaluator())
        with ThreadPoolExecutor(max_workers=1) as executor:
            batcher = Batcher(evaluator, executor=executor,
                              **batcher_kwargs)
            try:
                return await coro_factory(batcher, evaluator)
            finally:
                batcher.close()
                await batcher.drain(timeout=10.0)

    return asyncio.run(main())


class TestCoalescing:
    def test_concurrent_same_key_requests_share_one_batch(self):
        async def scenario(batcher, evaluator):
            results = await asyncio.gather(*[
                batcher.submit("k", f"r{i}") for i in range(6)
            ])
            assert results == [f"k:r{i}" for i in range(6)]
            return batcher.stats

        stats = run_batcher(scenario, window=0.02)
        assert stats.submitted == 6
        assert stats.batches == 1
        assert stats.batch_sizes == [6]
        assert stats.coalesced == 5

    def test_different_keys_never_share_a_batch(self):
        async def scenario(batcher, evaluator):
            await asyncio.gather(
                batcher.submit("a", "r0"), batcher.submit("b", "r1")
            )
            return evaluator.batches

        batches = run_batcher(scenario, window=0.02)
        assert sorted(key for key, _ in batches) == ["a", "b"]

    def test_requests_arriving_mid_sweep_form_the_next_batch(self):
        gate = threading.Event()

        async def scenario(batcher, evaluator):
            first = asyncio.ensure_future(batcher.submit("k", "r0"))
            while not evaluator.batches:  # sweep 1 is now blocked
                await asyncio.sleep(0.005)
            laters = [
                asyncio.ensure_future(batcher.submit("k", f"r{i}"))
                for i in (1, 2, 3)
            ]
            await asyncio.sleep(0.02)
            gate.set()
            await asyncio.gather(first, *laters)
            return evaluator.batches

        batches = run_batcher(
            scenario, window=0.0,
            evaluator=RecordingEvaluator(gate=gate),
        )
        assert [len(requests) for _, requests in batches] == [1, 3]

    def test_coalesce_off_dispatches_singleton_batches(self):
        async def scenario(batcher, evaluator):
            await asyncio.gather(*[
                batcher.submit("k", f"r{i}") for i in range(4)
            ])
            return batcher.stats

        stats = run_batcher(scenario, window=0.02, coalesce=False)
        assert stats.batches == 4
        assert stats.coalesced == 0
        assert stats.batch_sizes == [1, 1, 1, 1]

    def test_results_keep_request_order_within_a_batch(self):
        async def scenario(batcher, evaluator):
            results = await asyncio.gather(*[
                batcher.submit("k", i) for i in range(10)
            ])
            assert results == [f"k:{i}" for i in range(10)]

        run_batcher(scenario, window=0.02)


class TestBackpressure:
    def test_queue_full_raises_429_error(self):
        gate = threading.Event()

        async def scenario(batcher, evaluator):
            blocker = asyncio.ensure_future(batcher.submit("k", "r0"))
            while not evaluator.batches:
                await asyncio.sleep(0.005)
            fillers = [
                asyncio.ensure_future(batcher.submit("k", f"r{i}"))
                for i in (1, 2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                await batcher.submit("k", "overflow")
            gate.set()
            await asyncio.gather(blocker, *fillers)
            return batcher.stats

        stats = run_batcher(
            scenario, window=0.0, max_queue=2,
            evaluator=RecordingEvaluator(gate=gate),
        )
        assert stats.rejected == 1

    def test_closed_batcher_rejects_with_draining_error(self):
        async def scenario(batcher, evaluator):
            batcher.close()
            with pytest.raises(DrainingError):
                await batcher.submit("k", "r0")

        run_batcher(scenario)


class TestDeadlines:
    def test_expired_request_fails_without_poisoning_the_batch(self):
        gate = threading.Event()

        async def scenario(batcher, evaluator):
            blocker = asyncio.ensure_future(batcher.submit("k", "r0"))
            while not evaluator.batches:
                await asyncio.sleep(0.005)
            # Queued behind the in-flight sweep with a deadline that
            # expires before the sweep finishes ...
            doomed = asyncio.ensure_future(
                batcher.submit("k", "doomed", timeout=0.01)
            )
            # ... while a patient companion shares the same batch.
            patient = asyncio.ensure_future(
                batcher.submit("k", "patient", timeout=30.0)
            )
            await asyncio.sleep(0.05)
            gate.set()
            with pytest.raises(DeadlineExpiredError):
                await doomed
            assert await patient == "k:patient"
            assert await blocker == "k:r0"
            return batcher.stats

        stats = run_batcher(
            scenario, window=0.0,
            evaluator=RecordingEvaluator(gate=gate),
        )
        assert stats.expired == 1
        # The doomed request never reached an evaluation batch.
        assert stats.batch_sizes == [1, 1]

    def test_cancelled_waiter_does_not_poison_the_batch(self):
        gate = threading.Event()

        async def scenario(batcher, evaluator):
            blocker = asyncio.ensure_future(batcher.submit("k", "r0"))
            while not evaluator.batches:
                await asyncio.sleep(0.005)
            quitter = asyncio.ensure_future(batcher.submit("k", "quit"))
            survivor = asyncio.ensure_future(batcher.submit("k", "ok"))
            await asyncio.sleep(0)
            quitter.cancel()
            gate.set()
            assert await survivor == "k:ok"
            assert await blocker == "k:r0"
            with pytest.raises(asyncio.CancelledError):
                await quitter

        run_batcher(
            scenario, window=0.0,
            evaluator=RecordingEvaluator(gate=gate),
        )


class TestFaultInjection:
    def test_evaluator_failure_fails_only_that_batch(self):
        async def scenario(batcher, evaluator):
            evaluator.fail_keys.add("bad")
            good, bad = await asyncio.gather(
                batcher.submit("good", "r0"),
                batcher.submit("bad", "r1"),
                return_exceptions=True,
            )
            assert good == "good:r0"
            assert isinstance(bad, RuntimeError)
            # The failed key recovers: the next batch sweeps normally.
            evaluator.fail_keys.clear()
            assert await batcher.submit("bad", "r2") == "bad:r2"
            return batcher.stats

        stats = run_batcher(scenario, window=0.01)
        assert stats.failed == 1

    def test_result_count_mismatch_is_an_error(self):
        def broken(key, requests):
            return ["only-one"]  # regardless of the batch size

        async def main():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = Batcher(broken, executor=executor,
                                  window=0.02)
                results = await asyncio.gather(
                    batcher.submit("k", "r0"),
                    batcher.submit("k", "r1"),
                    return_exceptions=True,
                )
                assert all("results" in str(r) for r in results)
                batcher.close()
                await batcher.drain(timeout=5.0)

        asyncio.run(main())

    def test_worker_kill_mid_batch_recycles_pool_batch_survives(self):
        """Kill a warm-pool worker mid-sweep: the sharded engine under
        the evaluator recycles the pool and degrades the affected
        shards to in-process execution, so the batch's requests all
        complete correctly — no other request is ever touched — and
        the next batch gets a fresh pool."""
        from repro.obs.metrics import counter
        from repro.parallel import run_sharded, shm_available

        if not shm_available():
            pytest.skip("no shared-memory support on this host")

        def sweeping_evaluate(key, requests):
            values = run_sharded(
                _die_in_worker, list(requests), jobs=2, retries=1,
                backend="shm",
            )
            return [f"{key}:{value}" for value in values]

        recycles_before = counter("parallel_pool_recycles_total").value

        async def main():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = Batcher(sweeping_evaluate, executor=executor,
                                  window=0.02)
                results = await asyncio.gather(
                    batcher.submit("k", 1), batcher.submit("k", 2),
                )
                assert results == ["k:101", "k:102"]
                batcher.close()
                assert await batcher.drain(timeout=10.0)
                return batcher.stats

        stats = asyncio.run(main())
        assert stats.failed == 0
        assert counter("parallel_pool_recycles_total").value > \
            recycles_before
        # Follow-up traffic sweeps normally on the recycled pool.
        assert run_sharded(_die_in_worker, [7], jobs=2, retries=1,
                           backend="shm") == [107]


class TestDrain:
    def test_drain_completes_inflight_work(self):
        async def scenario(batcher, evaluator):
            results = asyncio.gather(*[
                batcher.submit("k", f"r{i}") for i in range(3)
            ])
            await asyncio.sleep(0)  # let the submissions enqueue
            batcher.close()
            assert await batcher.drain(timeout=10.0)
            assert await results == [f"k:r{i}" for i in range(3)]

        run_batcher(scenario, window=0.01,
                    evaluator=RecordingEvaluator(delay=0.02))

    def test_drain_timeout_fails_stragglers(self):
        gate = threading.Event()

        async def scenario(batcher, evaluator):
            blocker = asyncio.ensure_future(batcher.submit("k", "r0"))
            while not evaluator.batches:
                await asyncio.sleep(0.005)
            queued = asyncio.ensure_future(batcher.submit("k", "late"))
            await asyncio.sleep(0)
            batcher.close()
            completed = await batcher.drain(timeout=0.01)
            assert not completed
            gate.set()
            # Both the queued and the interrupted in-flight request
            # surface the shutdown as DrainingError (HTTP 503), never
            # a bare cancellation.
            with pytest.raises(DrainingError):
                await queued
            with pytest.raises(DrainingError):
                await blocker

        run_batcher(
            scenario, window=0.0,
            evaluator=RecordingEvaluator(gate=gate),
        )
