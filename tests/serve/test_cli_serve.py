"""The ``repro serve`` CLI: parsing, the subprocess lifecycle, and the
``--metrics-port`` satellite behaviors.

The subprocess tests launch the real ``python -m repro serve`` on an
ephemeral port, talk to it over HTTP, terminate it with SIGTERM, and
check the clean-exit contract: exit code 0, no orphan workers, no
leaked ``/dev/shm`` segments.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8080)
        assert args.batch_window == pytest.approx(2.0)
        assert args.max_queue == 256
        assert not args.no_coalesce

    def test_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--jobs", "4", "--backend", "shm",
            "--batch-window", "5", "--max-queue", "32",
            "--deadline", "3", "--drain-timeout", "1", "--no-coalesce",
        ])
        assert args.port == 0
        assert args.jobs == 4
        assert args.backend == "shm"
        assert args.no_coalesce

    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "-1"],
        ["serve", "--batch-window", "-2"],
        ["serve", "--max-queue", "0"],
        ["serve", "--backend", "bogus"],
    ])
    def test_invalid_flags_are_usage_errors(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_taken_port_is_a_clean_error(self, capsys):
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            blocker.listen(1)
            assert main(["serve", "--port", str(port)]) == 1
        out = capsys.readouterr().out
        assert "cannot bind" in out
        assert "Traceback" not in out


def _spawn_serve(*extra_args):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True,
    )


def _await_url(process, timeout=30.0):
    """Read the announced URL from the server's stdout."""
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "serving on" in line:
            return line.split("serving on ", 1)[1].strip()
        if process.poll() is not None:
            break
        time.sleep(0.05)
    raise AssertionError(
        f"server never announced its URL (last line {line!r}, "
        f"stderr: {process.stderr.read() if process.poll() is not None else '...running'})"
    )


class TestSubprocessLifecycle:
    def test_sigterm_drains_cleanly_without_shm_leaks(self):
        process = _spawn_serve("--jobs", "2", "--backend", "shm")
        try:
            url = _await_url(process)
            body = json.dumps({"workload": "fig1"}).encode()
            request = urllib.request.Request(url + "/v1/stats", data=body)
            with urllib.request.urlopen(request, timeout=30.0) as resp:
                assert resp.status == 200
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
        leftovers = [
            name for name in os.listdir("/dev/shm")
            if name.startswith("repro")
        ] if os.path.isdir("/dev/shm") else []
        assert leftovers == []

    def test_port_zero_announces_ephemeral_port_on_stdout(self):
        process = _spawn_serve()
        try:
            url = _await_url(process)
            assert url.startswith("http://127.0.0.1:")
            port = int(url.rsplit(":", 1)[1])
            assert port > 0
            with urllib.request.urlopen(url + "/healthz",
                                        timeout=10.0) as resp:
                assert resp.read() == b"ok\n"
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


class TestMetricsPortSatellite:
    def test_port_zero_reports_chosen_port_on_stdout(self, netlist,
                                                     capsys):
        assert main(["analyze", netlist, "--metrics-port", "0"]) == 0
        out = capsys.readouterr().out
        assert "metrics server listening on http://127.0.0.1:" in out

    def test_taken_metrics_port_is_clear_error_run_continues(
        self, netlist, capsys
    ):
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            blocker.listen(1)
            assert main([
                "analyze", netlist, "--metrics-port", str(port)
            ]) == 0  # the run itself still succeeds
        captured = capsys.readouterr()
        assert "cannot serve metrics" in captured.err
        assert "Traceback" not in captured.err


@pytest.fixture
def netlist(tmp_path):
    from repro.circuit import tree_to_netlist
    from repro.workloads import fig1_tree

    path = tmp_path / "fig1.sp"
    path.write_text(tree_to_netlist(fig1_tree(), title="fig1"))
    return str(path)
