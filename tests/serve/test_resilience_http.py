"""Serve-side resilience: the batch watchdog, stuck-batch recycling,
``Retry-After`` on shed responses, and the NaN row guard over HTTP.

The ``batch.stuck`` fault point stalls an evaluation inside the sweep
executor; the watchdog must fail the waiting requests with a 503 (and a
``Retry-After`` hint), recycle the executor, and serve the next request
normally.
"""

import asyncio
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import counter
from repro.resilience.faults import clear_faults, install_faults
from repro.serve import ServeConfig, ServerThread
from repro.serve.batcher import Batcher, StuckBatchError


@pytest.fixture(autouse=True)
def fault_gate():
    clear_faults()
    yield
    clear_faults()


def _evaluate(key, requests):
    return [f"{key}:{request}" for request in requests]


def _post(url, path, payload):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestBatcherWatchdog:
    def test_stuck_batch_fails_fast_and_recovers(self):
        fired = counter("resilience_watchdog_fired_total")
        f0 = fired.value
        stuck_keys = []

        async def scenario():
            old = ThreadPoolExecutor(max_workers=1)
            fresh = ThreadPoolExecutor(max_workers=1)
            batcher = Batcher(
                _evaluate, executor=old, window=0.005,
                watchdog_timeout=0.15, on_stuck=stuck_keys.append,
            )
            install_faults("batch.stuck:delay=1.5")
            try:
                with pytest.raises(StuckBatchError):
                    await batcher.submit("k", "r0")
                assert batcher.stats.stuck == 1
                assert stuck_keys == ["k"]
                # The recovery the app performs: a fresh executor (the
                # old one is still occupied by the abandoned sweep).
                batcher.replace_executor(fresh)
                assert await batcher.submit("k", "r1") == "k:r1"
            finally:
                batcher.close()
                await batcher.drain(timeout=10.0)
                old.shutdown(wait=True)
                fresh.shutdown(wait=True)

        asyncio.run(scenario())
        assert fired.value == f0 + 1

    def test_watchdog_validation(self):
        from repro._exceptions import ReproError
        with ThreadPoolExecutor(max_workers=1) as executor:
            with pytest.raises(ReproError, match="watchdog_timeout"):
                Batcher(_evaluate, executor=executor,
                        watchdog_timeout=0.0)

    def test_no_watchdog_waits_out_a_slow_batch(self):
        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = Batcher(_evaluate, executor=executor,
                                  window=0.005)
                install_faults("batch.stuck:delay=0.1")
                try:
                    assert await batcher.submit("k", "r0") == "k:r0"
                    assert batcher.stats.stuck == 0
                finally:
                    batcher.close()
                    await batcher.drain(timeout=10.0)

        asyncio.run(scenario())


class TestServeWatchdogHttp:
    @pytest.fixture()
    def server(self):
        config = ServeConfig(port=0, batch_window=0.001,
                             manage_pool=False, watchdog=0.15)
        with ServerThread(config) as thread:
            yield thread

    def test_stuck_batch_returns_503_with_retry_after(self, server):
        install_faults("batch.stuck:delay=1.5")
        status, headers, body = _post(server.url, "/v1/stats",
                                      {"workload": "fig1"})
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert "stuck" in body["error"]["message"]
        # The executor was recycled: the very next request is served.
        status, _, body = _post(server.url, "/v1/stats",
                                {"workload": "fig1"})
        assert status == 200
        assert "nodes" in body


class TestHttpNanGuard:
    @pytest.fixture(scope="class")
    def server(self):
        with ServerThread(ServeConfig(port=0, batch_window=0.001,
                                      manage_pool=False)) as thread:
            yield thread

    def test_nan_rscale_row_rejected_with_400(self, server):
        # json.dumps emits a bare NaN literal (allow_nan=True default)
        # and the server's parser accepts it — the schema guard must be
        # the layer that refuses.
        status, _, body = _post(
            server.url, "/v1/stats",
            {"workload": "fig1", "rscale": [1.0, float("nan")]},
        )
        assert status == 400
        assert "finite" in body["error"]["message"]

    def test_infinite_cscale_rejected_with_400(self, server):
        status, _, body = _post(
            server.url, "/v1/stats",
            {"workload": "fig1", "cscale": [float("inf")]},
        )
        assert status == 400
