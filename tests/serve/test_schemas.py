"""Request validation: readable 400s, coalescing keys, parameter rows."""

import numpy as np
import pytest

from repro._exceptions import ValidationError
from repro.serve.schemas import (
    MAX_ROWS_PER_REQUEST,
    parse_ssta_request,
    parse_sta_request,
    parse_stats_request,
    parse_verify_request,
    resolve_workload,
    topology_key,
    tree_from_spec,
)
from repro.signals import SaturatedRamp, StepInput

INLINE_TREE = {
    "input": "in",
    "nodes": [
        {"name": "a", "parent": "in", "r": 100.0, "c": 1e-12},
        {"name": "b", "parent": "a", "r": 200.0, "c": 2e-12},
    ],
}


class TestWorkloads:
    def test_named_workloads_resolve(self):
        assert resolve_workload("fig1").num_nodes > 0
        assert resolve_workload("tree25").num_nodes == 25

    def test_workloads_are_cached_singletons(self):
        assert resolve_workload("fig1") is resolve_workload("fig1")

    def test_parametric_balanced(self):
        tree = resolve_workload("balanced:3x2")
        assert tree.num_nodes == 1 + 2 + 4

    @pytest.mark.parametrize("name", [
        "nope", "balanced:x", "balanced:0x2", "balanced:2x-1", "", 7,
    ])
    def test_bad_workloads_rejected(self, name):
        with pytest.raises(ValidationError):
            resolve_workload(name)

    def test_oversized_parametric_workload_rejected(self):
        with pytest.raises(ValidationError, match="limit"):
            resolve_workload("balanced:30x2")

    @pytest.mark.parametrize("name", [
        "balanced:200000x2",       # geometric blow-up
        "balanced:1000000000x1",   # linear chain, huge depth
        "balanced:64x65536",       # huge fanout
    ])
    def test_huge_parametric_workloads_rejected_fast(self, name):
        # The node count must be bounded *before* any big-int
        # exponentiation: an unbounded sum here would stall the event
        # loop for arbitrary client input.
        import time

        start = time.monotonic()
        with pytest.raises(ValidationError, match="limit"):
            resolve_workload(name)
        assert time.monotonic() - start < 1.0


class TestInlineTrees:
    def test_round_trip(self):
        tree = tree_from_spec(INLINE_TREE)
        assert list(tree.node_names) == ["a", "b"]
        assert tree.input_node == "in"

    @pytest.mark.parametrize("mutate", [
        lambda s: s.pop("nodes"),
        lambda s: s["nodes"].append({"name": "c", "parent": "ghost",
                                     "r": 1.0}),
        lambda s: s["nodes"].append({"name": "a", "parent": "in",
                                     "r": 1.0}),
        lambda s: s["nodes"][0].pop("r"),
        lambda s: s["nodes"][0].update(r=-5.0),
        lambda s: s["nodes"][0].update(bogus=1),
        lambda s: s.update(bogus=1),
    ])
    def test_malformed_trees_rejected(self, mutate):
        spec = {
            "input": INLINE_TREE["input"],
            "nodes": [dict(n) for n in INLINE_TREE["nodes"]],
        }
        mutate(spec)
        with pytest.raises(ValidationError):
            tree_from_spec(spec)


class TestTopologyKey:
    def test_same_inline_shape_coalesces(self):
        assert topology_key(tree_from_spec(INLINE_TREE)) == \
            topology_key(tree_from_spec(INLINE_TREE))

    def test_element_values_do_not_split_keys(self):
        # Coalescing is structural: same shape, different R/C -> the
        # values ride in as parameter rows, the sweep is shared.
        other = {
            "input": "in",
            "nodes": [
                {"name": "a", "parent": "in", "r": 999.0, "c": 9e-12},
                {"name": "b", "parent": "a", "r": 1.0, "c": 1e-15},
            ],
        }
        assert topology_key(tree_from_spec(INLINE_TREE)) == \
            topology_key(tree_from_spec(other))

    def test_different_shapes_split_keys(self):
        reshaped = {
            "input": "in",
            "nodes": [
                {"name": "a", "parent": "in", "r": 100.0, "c": 1e-12},
                {"name": "b", "parent": "in", "r": 200.0, "c": 2e-12},
            ],
        }
        assert topology_key(tree_from_spec(INLINE_TREE)) != \
            topology_key(tree_from_spec(reshaped))

    def test_workload_key_is_name_based(self):
        tree = resolve_workload("fig1")
        assert topology_key(tree, origin="fig1") == "workload:fig1"

    def test_nul_crafted_names_do_not_collide(self):
        # Names are length-prefixed into the digest: with a separator
        # byte alone, ["a\x00b", "c"] and ["a", "b\x00c"] would hash
        # identically and coalesce two different topologies.
        def spec(names):
            return {
                "input": "in",
                "nodes": [
                    {"name": name, "parent": "in", "r": 1.0, "c": 1e-12}
                    for name in names
                ],
            }

        a = tree_from_spec(spec(["a\x00b", "c"]))
        b = tree_from_spec(spec(["a", "b\x00c"]))
        assert topology_key(a) != topology_key(b)


class TestStatsRequest:
    def test_defaults(self):
        req = parse_stats_request({"workload": "fig1"})
        assert req.key == "workload:fig1"
        assert req.rows == 1
        assert isinstance(req.signal, StepInput)
        np.testing.assert_array_equal(
            req.resistances[0], resolve_workload("fig1").resistances
        )

    def test_signal_spec(self):
        req = parse_stats_request(
            {"workload": "fig1", "signal": "ramp:2ns"}
        )
        assert isinstance(req.signal, SaturatedRamp)
        assert req.signal.rise_time == pytest.approx(2e-9)

    def test_rscale_rows(self):
        req = parse_stats_request(
            {"workload": "fig1", "rscale": [1.0, 1.5], "cscale": 2.0}
        )
        assert req.rows == 2
        tree = resolve_workload("fig1")
        np.testing.assert_allclose(
            req.resistances[1], 1.5 * tree.resistances
        )
        np.testing.assert_allclose(
            req.capacitances[0], 2.0 * tree.capacitances
        )

    def test_explicit_rows(self):
        req = parse_stats_request({
            "tree": INLINE_TREE,
            "resistances": [[10.0, 20.0], [30.0, 40.0]],
            "capacitances": [1e-12, 2e-12],
        })
        assert req.rows == 2
        np.testing.assert_array_equal(
            req.capacitances, [[1e-12, 2e-12]] * 2
        )

    @pytest.mark.parametrize("payload", [
        {},  # no topology
        {"workload": "fig1", "tree": INLINE_TREE},  # both
        {"workload": "fig1", "rscale": 0.0},
        {"workload": "fig1", "rscale": [1.0], "resistances": [[1.0]]},
        {"workload": "fig1", "resistances": [[1.0, 2.0]]},  # wrong width
        {"workload": "fig1", "rscale": [1.0, 2.0], "cscale": [1.0] * 3},
        {"workload": "fig1", "nodes": ["ghost"]},
        {"workload": "fig1", "signal": "bogus:2ns"},
        {"workload": "fig1", "signal": "ramp"},  # missing parameter
        {"workload": "fig1", "timeout_ms": 0},
        {"workload": "fig1", "bogus": 1},
        {"tree": INLINE_TREE, "capacitances": [[0.0, 0.0]]},  # no C
        [],
        "text",
    ])
    def test_invalid_requests_rejected(self, payload):
        with pytest.raises(ValidationError):
            parse_stats_request(payload)

    def test_row_limit_enforced(self):
        with pytest.raises(ValidationError, match="limit"):
            parse_stats_request({
                "workload": "fig1",
                "rscale": [1.0] * (MAX_ROWS_PER_REQUEST + 1),
            })

    def test_timeout_ms(self):
        req = parse_stats_request(
            {"workload": "fig1", "timeout_ms": 1500}
        )
        assert req.timeout_s == pytest.approx(1.5)


class TestVerifyAndSta:
    def test_verify_defaults(self):
        req = parse_verify_request({"workload": "tree25"})
        assert req.samples == 4001
        assert req.tree.num_nodes == 25

    def test_verify_sample_bounds(self):
        with pytest.raises(ValidationError):
            parse_verify_request({"workload": "fig1", "samples": 3})

    def test_sta_defaults(self):
        req = parse_sta_request({})
        assert (req.layers, req.width, req.seed) == (6, 15, 3)
        assert req.delay_model == "elmore"

    def test_sta_unknown_delay_model(self):
        with pytest.raises(ValidationError, match="delay model"):
            parse_sta_request({"delay_model": "spice"})

    def test_sta_unknown_field(self):
        with pytest.raises(ValidationError, match="unknown"):
            parse_sta_request({"depth": 3})

    def test_ssta_defaults(self):
        req = parse_ssta_request({})
        assert (req.layers, req.width, req.seed) == (6, 15, 3)
        assert req.rsigma == req.csigma == pytest.approx(0.08)
        assert req.cell_sigma == pytest.approx(0.05)
        assert req.correlation == pytest.approx(0.5)
        assert req.required is None
        assert req.samples == 0

    def test_ssta_bounds(self):
        with pytest.raises(ValidationError, match="correlation"):
            parse_ssta_request({"correlation": 2.0})
        with pytest.raises(ValidationError, match="rsigma"):
            parse_ssta_request({"rsigma": -0.1})
        with pytest.raises(ValidationError, match="samples"):
            parse_ssta_request({"samples": 200_000})
        with pytest.raises(ValidationError, match="unknown"):
            parse_ssta_request({"sigma": 0.1})
