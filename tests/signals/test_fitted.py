"""Tests for moment-fitted surrogates and delayed-signal composition."""

import numpy as np
import pytest

from repro._exceptions import SignalError
from repro.analysis import ExactAnalysis, measure_delay
from repro.core import delay_bounds, transfer_moments
from repro.signals import (
    DelayedSignal,
    SaturatedRamp,
    StepInput,
    fitted_ramp,
    stage_output_model,
)


class TestDelayedSignal:
    def test_shifted_values(self):
        base = SaturatedRamp(2e-9)
        shifted = DelayedSignal(base, 1e-9)
        t = np.linspace(0, 5e-9, 50)
        np.testing.assert_allclose(shifted.value(t), base.value(t - 1e-9))

    def test_moments_shift(self):
        base = SaturatedRamp(2e-9)
        shifted = DelayedSignal(base, 1e-9)
        dm_b, dm_s = base.derivative_moments(), shifted.derivative_moments()
        assert dm_s.mean == pytest.approx(dm_b.mean + 1e-9)
        assert dm_s.mu2 == pytest.approx(dm_b.mu2)
        assert dm_s.mu3 == pytest.approx(dm_b.mu3)

    def test_t50_and_settle(self):
        shifted = DelayedSignal(SaturatedRamp(2e-9), 1e-9)
        assert shifted.t50 == pytest.approx(2e-9)
        assert shifted.settle_time == pytest.approx(3e-9)

    def test_exp_convolution_shift_property(self):
        base = SaturatedRamp(2e-9)
        shifted = DelayedSignal(base, 1e-9)
        lam = 1e9
        t = np.linspace(0, 8e-9, 60)
        np.testing.assert_allclose(
            shifted.exp_convolution(lam, t),
            np.where(t <= 1e-9, 0.0,
                     base.exp_convolution(lam, np.maximum(t - 1e-9, 0))),
        )

    def test_flags_inherited(self):
        shifted = DelayedSignal(SaturatedRamp(1e-9), 1e-9)
        assert shifted.derivative_unimodal
        assert shifted.derivative_symmetric

    def test_negative_delay_rejected(self):
        with pytest.raises(SignalError):
            DelayedSignal(StepInput(), -1e-9)

    def test_bounds_hold_for_delayed_input(self, fig1):
        """The whole bound pipeline composes with delayed inputs."""
        signal = DelayedSignal(SaturatedRamp(2e-9), 0.7e-9)
        analysis = ExactAnalysis(fig1)
        for node in ("n1", "n5"):
            b = delay_bounds(fig1, node, signal=signal)
            actual = measure_delay(analysis, node, signal)
            assert b.contains(actual, rel_tol=1e-6)


class TestFittedRamp:
    def test_round_trip_moments(self):
        sig = fitted_ramp(mean=3e-9, mu2=0.25e-18)
        dm = sig.derivative_moments()
        assert dm.mean == pytest.approx(3e-9)
        assert dm.mu2 == pytest.approx(0.25e-18)

    def test_acausal_fit_rejected(self):
        # Variance too large for the mean: ramp would start before 0.
        with pytest.raises(SignalError):
            fitted_ramp(mean=1e-10, mu2=1e-18)

    def test_zero_variance_rejected(self):
        with pytest.raises(SignalError):
            fitted_ramp(mean=1e-9, mu2=0.0)


class TestStageOutputModel:
    def test_matches_exact_output_moments(self, fig1):
        signal = SaturatedRamp(5e-9)
        surrogate = stage_output_model(fig1, "n5", signal)
        moments = transfer_moments(fig1, 2)
        din = signal.derivative_moments()
        dm = surrogate.derivative_moments()
        assert dm.mean == pytest.approx(moments.mean("n5") + din.mean)
        assert dm.mu2 == pytest.approx(
            moments.variance("n5") + din.mu2, rel=1e-12
        )

    def test_surrogate_waveform_close_to_exact(self, fig1):
        """The two-moment ramp tracks the true output waveform."""
        signal = SaturatedRamp(5e-9)
        surrogate = stage_output_model(fig1, "n5", signal)
        analysis = ExactAnalysis(fig1)
        t = np.linspace(0, 12e-9, 400)
        exact = analysis.response("n5", signal, t)
        approx = surrogate.value(t)
        assert float(np.max(np.abs(exact - approx))) < 0.09

    def test_acausal_fallback_keeps_mean(self, single_rc):
        """Step into one pole: sigma = mean, the exact fit is acausal, the
        fallback ramp keeps the mean (hence the Elmore additivity) and
        shrinks the variance (the conservative direction)."""
        surrogate = stage_output_model(single_rc, "out", StepInput())
        dm = surrogate.derivative_moments()
        assert dm.mean == pytest.approx(1e-9)
        assert dm.mu2 < (1e-9) ** 2

    def test_chained_stage_bound_still_holds(self, fig1):
        """Chain two copies of the circuit through the surrogate: the
        second stage's measured delay obeys its own Elmore bound with the
        surrogate input."""
        stage1_out = stage_output_model(fig1, "n5", StepInput())
        analysis = ExactAnalysis(fig1)
        b = delay_bounds(fig1, "n5", signal=stage1_out)
        actual = measure_delay(analysis, "n5", stage1_out)
        assert b.contains(actual, rel_tol=1e-6)

    def test_chained_delay_close_to_true_cascade(self):
        """Surrogate-chained total delay approximates the true two-stage
        cascade (two RC lines separated by an ideal buffer)."""
        from repro.circuit import rc_line
        stage = rc_line(6, 120.0, 80e-15, driver_resistance=250.0)
        analysis = ExactAnalysis(stage)

        # True cascade: stage 2 driven by stage 1's actual output.  An
        # ideal buffer means stage 2 sees stage 1's waveform directly.
        t = np.linspace(0.0, 60e-9, 30001)
        v1 = analysis.step_response("n6", t)
        # Feed v1 as a PWL into stage 2.
        from repro.signals import PWLSignal
        v1 = np.clip(v1 / v1[-1], 0.0, None)
        v1 = np.minimum.accumulate(v1[::-1])[::-1]  # enforce monotone
        v1[-1] = 1.0
        keep = np.concatenate(([0], np.arange(1, t.size)))
        pwl = PWLSignal(t, np.maximum.accumulate(v1))
        true_total = measure_delay(analysis, "n6", pwl) + pwl.t50

        # Surrogate cascade.
        surrogate = stage_output_model(stage, "n6", StepInput())
        approx_total = measure_delay(analysis, "n6", surrogate) + \
            surrogate.t50
        # A two-moment ramp is a coarse shape model; ~10% total-path error
        # is the expected fidelity class for this kind of surrogate.
        assert approx_total == pytest.approx(true_total, rel=0.12)
