"""Unit tests for the input-signal library: shapes, moments, t50."""

import numpy as np
import pytest

from repro._compat import trapezoid
from repro._exceptions import SignalError
from repro.signals import (
    ExponentialInput,
    PWLSignal,
    RaisedCosineRamp,
    SaturatedRamp,
    SmoothstepRamp,
    StepInput,
)

ALL_SIGNALS = [
    StepInput(),
    SaturatedRamp(2e-9),
    RaisedCosineRamp(2e-9),
    SmoothstepRamp(2e-9),
    ExponentialInput(1e-9),
    PWLSignal([0.0, 1e-9, 3e-9], [0.0, 0.7, 1.0]),
]
IDS = ["step", "ramp", "raised_cos", "smoothstep", "exponential", "pwl"]


@pytest.mark.parametrize("signal", ALL_SIGNALS, ids=IDS)
class TestCommonContract:
    def test_zero_before_t0(self, signal):
        t = np.array([-5e-9, -1e-12])
        assert np.all(signal.value(t) == 0.0)

    def test_monotone_nondecreasing(self, signal):
        t = np.linspace(-1e-9, signal.settle_time + 2e-9, 2000)
        v = signal.value(t)
        assert np.all(np.diff(v) >= -1e-12)

    def test_unit_final_value(self, signal):
        t_end = signal.settle_time + 1e-9
        assert float(signal.value(np.asarray(t_end))) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_t50_is_half_crossing(self, signal):
        if isinstance(signal, StepInput):
            assert signal.t50 == 0.0  # crossing at the jump itself
            return
        t50 = signal.t50
        v = float(signal.value(np.asarray(t50)))
        assert v == pytest.approx(0.5, abs=1e-9)

    def test_derivative_nonnegative(self, signal):
        t = np.linspace(0.0, signal.settle_time + 1e-9, 1000)
        assert np.all(signal.derivative(t) >= 0.0)

    def test_derivative_integrates_to_one(self, signal):
        if isinstance(signal, StepInput):
            pytest.skip("impulsive derivative is not sampleable")
        t = np.linspace(0.0, signal.settle_time + 1e-12, 400001)
        assert trapezoid(signal.derivative(t), t) == pytest.approx(
            1.0, rel=1e-4
        )

    def test_derivative_moments_match_numeric(self, signal):
        if isinstance(signal, StepInput):
            pytest.skip("impulsive derivative is not sampleable")
        t = np.linspace(0.0, signal.settle_time + 1e-12, 400001)
        f = signal.derivative(t)
        mean = trapezoid(f * t, t)
        mu2 = trapezoid(f * (t - mean) ** 2, t)
        mu3 = trapezoid(f * (t - mean) ** 3, t)
        dm = signal.derivative_moments()
        assert dm.mean == pytest.approx(mean, rel=1e-3)
        assert dm.mu2 == pytest.approx(mu2, rel=1e-3)
        assert dm.mu3 == pytest.approx(mu3, rel=1e-2, abs=1e-3 * dm.mu2**1.5)

    def test_exp_convolution_against_pwl_fallback(self, signal):
        """Closed-form exp_convolution must agree with the generic PWL
        stepper (their common base-class contract)."""
        from repro.signals.base import Signal
        lam = 1.0 / 0.7e-9
        t = np.linspace(0.0, signal.settle_time + 5e-9, 37)
        closed = signal.exp_convolution(lam, t)
        generic = Signal.exp_convolution(signal, lam, t)
        np.testing.assert_allclose(closed, generic, rtol=1e-4, atol=1e-15)

    def test_exp_convolution_settles_to_one_over_lam(self, signal):
        lam = 1.0 / 0.5e-9
        t_end = signal.settle_time + 30 * 0.5e-9
        val = float(signal.exp_convolution(lam, np.asarray(t_end)))
        assert val == pytest.approx(1.0 / lam, rel=1e-6)

    def test_exp_convolution_rejects_bad_rate(self, signal):
        with pytest.raises(SignalError):
            signal.exp_convolution(0.0, np.array([1e-9]))

    def test_describe_nonempty(self, signal):
        assert signal.describe()


class TestStepSpecifics:
    def test_moments_all_zero(self):
        dm = StepInput().derivative_moments()
        assert dm.mean == dm.mu2 == dm.mu3 == 0.0
        assert dm.sigma == 0.0 and dm.skewness == 0.0

    def test_flags(self):
        s = StepInput()
        assert s.derivative_unimodal and s.derivative_symmetric


class TestSaturatedRamp:
    def test_uniform_density_moments(self):
        tr = 4e-9
        dm = SaturatedRamp(tr).derivative_moments()
        assert dm.mean == pytest.approx(tr / 2)
        assert dm.mu2 == pytest.approx(tr**2 / 12)
        assert dm.mu3 == 0.0

    def test_value_shape(self):
        ramp = SaturatedRamp(2e-9)
        assert float(ramp.value(np.asarray(1e-9))) == pytest.approx(0.5)
        assert float(ramp.value(np.asarray(5e-9))) == 1.0

    def test_bad_rise_time(self):
        with pytest.raises(SignalError):
            SaturatedRamp(0.0)
        with pytest.raises(SignalError):
            SaturatedRamp(float("nan"))


class TestRaisedCosine:
    def test_variance_formula(self):
        tr = 3e-9
        dm = RaisedCosineRamp(tr).derivative_moments()
        assert dm.mu2 == pytest.approx(tr**2 * (np.pi**2 - 8) / (4 * np.pi**2))

    def test_smoother_than_linear_ramp(self):
        """The raised cosine has smaller derivative variance than the
        linear ramp of equal rise time (mass concentrated centrally)."""
        tr = 2e-9
        assert RaisedCosineRamp(tr).derivative_moments().mu2 < \
            SaturatedRamp(tr).derivative_moments().mu2


class TestSmoothstep:
    def test_beta22_variance(self):
        tr = 5e-9
        assert SmoothstepRamp(tr).derivative_moments().mu2 == pytest.approx(
            tr**2 / 20
        )

    def test_c1_continuity_at_edges(self):
        s = SmoothstepRamp(1e-9)
        peak = 1.5 / 1e-9  # derivative maximum at the midpoint
        eps = 1e-15
        assert float(s.derivative(np.asarray(eps))) < 1e-4 * peak
        assert float(s.derivative(np.asarray(1e-9 - eps))) < 1e-4 * peak


class TestExponential:
    def test_moments(self):
        tau = 2e-9
        dm = ExponentialInput(tau).derivative_moments()
        assert dm.mean == pytest.approx(tau)
        assert dm.mu2 == pytest.approx(tau**2)
        assert dm.mu3 == pytest.approx(2 * tau**3)
        assert dm.skewness == pytest.approx(2.0)

    def test_t50(self):
        assert ExponentialInput(1e-9).t50 == pytest.approx(1e-9 * np.log(2))

    def test_not_symmetric(self):
        assert not ExponentialInput(1e-9).derivative_symmetric

    def test_degenerate_pole_rate(self):
        """exp_convolution with lam == 1/tau hits the repeated-root path."""
        sig = ExponentialInput(1e-9)
        lam = 1.0 / 1e-9
        t = np.linspace(0, 10e-9, 50)
        vals = sig.exp_convolution(lam, t)
        # Analytic: (1 - e^{-lam t})/lam - t e^{-lam t}.
        expected = (1 - np.exp(-lam * t)) / lam - t * np.exp(-lam * t)
        np.testing.assert_allclose(vals, expected, rtol=1e-9, atol=1e-21)


class TestPWL:
    def test_t50_interpolated(self):
        sig = PWLSignal([0.0, 2e-9], [0.0, 1.0])
        assert sig.t50 == pytest.approx(1e-9)

    def test_equivalent_to_saturated_ramp(self):
        tr = 2e-9
        pwl = PWLSignal([0.0, tr], [0.0, 1.0])
        ramp = SaturatedRamp(tr)
        t = np.linspace(0, 6e-9, 100)
        np.testing.assert_allclose(pwl.value(t), ramp.value(t))
        dm_p, dm_r = pwl.derivative_moments(), ramp.derivative_moments()
        assert dm_p.mean == pytest.approx(dm_r.mean)
        assert dm_p.mu2 == pytest.approx(dm_r.mu2)
        lam = 1e9
        np.testing.assert_allclose(
            pwl.exp_convolution(lam, t),
            ramp.exp_convolution(lam, t),
            rtol=1e-9, atol=1e-21,
        )

    def test_unimodality_detection(self):
        rising_then_falling = PWLSignal(
            [0, 1, 2, 3], [0.0, 0.2, 0.8, 1.0]
        )
        assert rising_then_falling.derivative_unimodal
        bimodal = PWLSignal(
            [0, 1, 4, 5], [0.0, 0.5, 0.5001, 1.0]
        )
        assert not bimodal.derivative_unimodal

    def test_symmetry_detection(self):
        sym = PWLSignal([0, 1, 2, 3], [0.0, 0.2, 0.8, 1.0])
        assert sym.derivative_symmetric
        asym = PWLSignal([0, 1, 3], [0.0, 0.8, 1.0])
        assert not asym.derivative_symmetric

    def test_validation(self):
        with pytest.raises(SignalError):
            PWLSignal([0.0], [0.0])
        with pytest.raises(SignalError):
            PWLSignal([0.0, 1.0], [0.0, 0.9])      # doesn't reach 1
        with pytest.raises(SignalError):
            PWLSignal([0.0, 1.0], [0.5, 1.0])      # doesn't start at 0
        with pytest.raises(SignalError):
            PWLSignal([1.0, 0.0], [0.0, 1.0])      # times not increasing
        with pytest.raises(SignalError):
            PWLSignal([0.0, 1.0, 2.0], [0.0, 1.0, 0.5])  # decreasing
        with pytest.raises(SignalError):
            PWLSignal([-1.0, 1.0], [0.0, 1.0])     # negative start

    def test_delayed_start(self):
        sig = PWLSignal([1e-9, 2e-9], [0.0, 1.0])
        assert float(sig.value(np.asarray(0.5e-9))) == 0.0
        lam = 1e9
        # Shifting the ramp start shifts the convolution consistently.
        base = PWLSignal([0.0, 1e-9], [0.0, 1.0])
        t = np.linspace(2e-9, 10e-9, 20)
        np.testing.assert_allclose(
            sig.exp_convolution(lam, t),
            base.exp_convolution(lam, t - 1e-9),
            rtol=1e-6,
        )
