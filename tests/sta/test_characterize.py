"""Tests for gate characterization (linear-driver fitting)."""

import math

import pytest

from repro._exceptions import AnalysisError, ValidationError
from repro.sta.characterize import (
    characterize_driver,
    lumped_load_delay_oracle,
)

LOADS = [5e-15, 10e-15, 20e-15, 40e-15, 80e-15]


class TestRoundTrip:
    def test_recovers_pure_linear_gate(self):
        oracle = lumped_load_delay_oracle(
            driver_resistance=400.0, intrinsic_delay=25e-12
        )
        fit = characterize_driver(oracle, LOADS)
        assert fit.driver_resistance == pytest.approx(400.0, rel=1e-9)
        assert fit.intrinsic_delay == pytest.approx(25e-12, rel=1e-9)
        assert fit.max_residual < 1e-18

    def test_parasitic_shows_up_as_intrinsic(self):
        """Output parasitic cap adds a fixed R*Cp*ln2 to every delay —
        the fit absorbs it into the intrinsic term."""
        oracle = lumped_load_delay_oracle(
            driver_resistance=300.0, parasitic_capacitance=15e-15
        )
        fit = characterize_driver(oracle, LOADS)
        assert fit.driver_resistance == pytest.approx(300.0, rel=1e-9)
        assert fit.intrinsic_delay == pytest.approx(
            math.log(2.0) * 300.0 * 15e-15, rel=1e-9
        )

    def test_predicted_delay_matches_oracle(self):
        oracle = lumped_load_delay_oracle(500.0, 10e-12)
        fit = characterize_driver(oracle, LOADS)
        for load in (7e-15, 33e-15):
            assert fit.predicted_delay(load) == pytest.approx(
                oracle(load), rel=1e-9
            )

    def test_to_cell(self):
        oracle = lumped_load_delay_oracle(450.0, 20e-12)
        fit = characterize_driver(oracle, LOADS)
        cell = fit.to_cell("FITTED", input_capacitance=9e-15)
        assert cell.driver_resistance == pytest.approx(450.0, rel=1e-9)
        assert cell.intrinsic_delay == pytest.approx(20e-12, rel=1e-9)
        assert cell.input_capacitance == 9e-15


class TestNonlinearOracle:
    def test_residual_reports_model_error(self):
        """A mildly nonlinear gate fits with a nonzero residual the
        characterization surfaces honestly."""
        def nonlinear(load):
            # Delay with a square-root (velocity-saturation-ish) bend.
            return 20e-12 + math.log(2.0) * 400.0 * load \
                + 5e-12 * math.sqrt(load / 80e-15)

        fit = characterize_driver(nonlinear, LOADS)
        assert fit.max_residual > 1e-13
        # The slope still lands near the linear part.
        assert fit.driver_resistance == pytest.approx(400.0, rel=0.2)

    def test_load_independent_oracle_rejected(self):
        with pytest.raises(AnalysisError):
            characterize_driver(lambda load: 1e-11, LOADS)

    def test_load_validation(self):
        oracle = lumped_load_delay_oracle(100.0)
        with pytest.raises(ValidationError):
            characterize_driver(oracle, [1e-15])
        with pytest.raises(ValidationError):
            characterize_driver(oracle, [1e-15, 1e-15])
        with pytest.raises(ValidationError):
            characterize_driver(oracle, [1e-15, -1e-15])
        with pytest.raises(ValidationError):
            lumped_load_delay_oracle(0.0)


class TestUseInSTA:
    def test_characterized_cell_drives_analysis(self):
        """A fitted cell slots straight into the STA flow."""
        from repro.sta import CellLibrary, Design, analyze
        oracle = lumped_load_delay_oracle(350.0, 30e-12)
        fit = characterize_driver(oracle, LOADS)
        lib = CellLibrary(name="fitted")
        lib.add(fit.to_cell("F_INV"))
        d = Design("mini", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u1", "F_INV")
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("nz", ("u1", "y"), [("@port", "z")])
        result = analyze(d)
        assert result.critical_delay > 30e-12
