"""Unit tests for net elaboration (the netlist -> RC tree bridge)."""

import pytest

from repro._exceptions import TimingGraphError
from repro.circuit import RCTree
from repro.core import elmore_delay
from repro.sta import Design, Pin, WireLoadModel, default_library
from repro.sta.interconnect import elaborate_net


@pytest.fixture
def lib():
    return default_library()


def two_sink_design(lib, positions=False):
    d = Design("d", lib)
    d.add_input("a")
    d.add_output("z")
    pos = {
        "u1": (0.0, 0.0), "u2": (200e-6, 0.0), "u3": (0.0, 300e-6),
    } if positions else {}
    d.add_instance("u1", "DRV", position=pos.get("u1"))
    d.add_instance("u2", "INV", position=pos.get("u2"))
    d.add_instance("u3", "INV", position=pos.get("u3"))
    d.connect("na", ("@port", "a"), [("u1", "a")])
    d.connect("n1", ("u1", "y"), [("u2", "a"), ("u3", "a")])
    d.connect("nz", ("u2", "y"), [("@port", "z")])
    # u3 output dangles intentionally for these unit tests; don't validate.
    return d


class TestWireLoadPath:
    def test_star_topology(self, lib):
        d = two_sink_design(lib)
        net = d.nets["n1"]
        elaborated = elaborate_net(d, net, wire_load=WireLoadModel(75.0,
                                                                   6e-15))
        tree = elaborated.tree
        assert tree.node("drv").resistance == lib.get("DRV").driver_resistance
        assert len(elaborated.sink_nodes) == 2
        # Each sink node hangs off the hub with the model resistance.
        for sink, node in elaborated.sink_nodes.items():
            assert tree.node(node).resistance == 75.0

    def test_sink_loads_added(self, lib):
        d = two_sink_design(lib)
        elaborated = elaborate_net(d, d.nets["n1"])
        inv_cap = lib.get("INV").input_capacitance
        for sink, node in elaborated.sink_nodes.items():
            assert elaborated.tree.node(node).capacitance >= inv_cap

    def test_port_driver_resistance(self, lib):
        d = two_sink_design(lib)
        elaborated = elaborate_net(
            d, d.nets["na"], port_driver_resistance=77.0
        )
        assert elaborated.tree.node("drv").resistance == 77.0

    def test_port_load_capacitance(self, lib):
        d = two_sink_design(lib)
        elaborated = elaborate_net(
            d, d.nets["nz"], port_load_capacitance=33e-15
        )
        sink_node = elaborated.sink_nodes[Pin(Pin.PORT, "z")]
        assert elaborated.tree.node(sink_node).capacitance >= 33e-15


class TestGeometryPath:
    def test_positions_route_real_wire(self, lib):
        d = two_sink_design(lib, positions=True)
        elaborated = elaborate_net(d, d.nets["n1"])
        # Routed wire carries length-proportional capacitance, far more
        # than the statistical model's default.
        assert elaborated.tree.total_capacitance() > 20e-15

    def test_farther_sink_slower(self, lib):
        d = two_sink_design(lib, positions=True)
        elaborated = elaborate_net(d, d.nets["n1"])
        d_u2 = elmore_delay(elaborated.tree,
                            elaborated.sink_nodes[Pin("u2", "a")])
        d_u3 = elmore_delay(elaborated.tree,
                            elaborated.sink_nodes[Pin("u3", "a")])
        # u3 is 300um away vs u2's 200um.
        assert d_u3 > d_u2

    def test_missing_position_falls_back(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_instance("u1", "DRV", position=(0.0, 0.0))
        d.add_instance("u2", "INV")  # no position
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("n1", ("u1", "y"), [("u2", "a")])
        elaborated = elaborate_net(d, d.nets["n1"])
        assert "s0" in elaborated.tree  # wire-load star naming


class TestOverridePath:
    def test_override_used_verbatim(self, lib):
        d = two_sink_design(lib)
        tree = RCTree("in")
        tree.add_node("drv", "in", 123.0, 0.0)
        tree.add_node("far", "drv", 500.0, 1e-12)
        mapping = {
            Pin("u2", "a"): "far",
            Pin("u3", "a"): "far",
        }
        elaborated = elaborate_net(d, d.nets["n1"],
                                   override=(tree, mapping))
        assert elaborated.tree is tree
        assert elaborated.sink_nodes[Pin("u2", "a")] == "far"

    def test_override_missing_sink_rejected(self, lib):
        d = two_sink_design(lib)
        tree = RCTree("in")
        tree.add_node("drv", "in", 123.0, 1e-15)
        with pytest.raises(TimingGraphError):
            elaborate_net(d, d.nets["n1"], override=(tree, {}))


class TestWireLoadValidation:
    def test_bad_model_values(self):
        with pytest.raises(TimingGraphError):
            WireLoadModel(resistance_per_sink=0.0)
        with pytest.raises(TimingGraphError):
            WireLoadModel(capacitance_per_sink=-1e-15)
