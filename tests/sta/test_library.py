"""Unit tests for the cell library."""

import pytest

from repro._exceptions import TimingGraphError, ValidationError
from repro.sta.library import Cell, CellLibrary, default_library


class TestCell:
    def test_valid_cell(self):
        cell = Cell("INV", ("a",), "y", 400.0, 8e-15, 20e-12)
        assert cell.pin_names == ("a", "y")

    def test_no_inputs_rejected(self):
        with pytest.raises(ValidationError):
            Cell("BAD", (), "y", 400.0, 8e-15, 20e-12)

    def test_pin_name_clash_rejected(self):
        with pytest.raises(ValidationError):
            Cell("BAD", ("y",), "y", 400.0, 8e-15, 20e-12)

    def test_bad_resistance_rejected(self):
        with pytest.raises(ValidationError):
            Cell("BAD", ("a",), "y", 0.0, 8e-15, 20e-12)

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            Cell("BAD", ("a",), "y", 400.0, -1e-15, 20e-12)
        with pytest.raises(ValidationError):
            Cell("BAD", ("a",), "y", 400.0, 8e-15, -1e-12)


class TestCellLibrary:
    def test_default_library_contents(self):
        lib = default_library()
        for name in ("INV", "BUF", "NAND2", "NOR2", "DRV"):
            assert name in lib
            cell = lib.get(name)
            assert cell.driver_resistance > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(TimingGraphError):
            default_library().get("FLUXCAP")

    def test_duplicate_rejected(self):
        lib = CellLibrary()
        cell = Cell("X", ("a",), "y", 1.0, 1e-15, 1e-12)
        lib.add(cell)
        with pytest.raises(ValidationError):
            lib.add(cell)
