"""Unit tests for the gate-level design container."""

import pytest

from repro._exceptions import TimingGraphError
from repro.sta import Design, Pin, default_library


@pytest.fixture
def lib():
    return default_library()


@pytest.fixture
def chain(lib):
    d = Design("chain", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("u1", "INV")
    d.add_instance("u2", "INV")
    d.connect("na", ("@port", "a"), [("u1", "a")])
    d.connect("n1", ("u1", "y"), [("u2", "a")])
    d.connect("nz", ("u2", "y"), [("@port", "z")])
    return d


class TestConstruction:
    def test_chain_validates(self, chain):
        chain.validate()
        assert len(chain.instances) == 2
        assert len(chain.nets) == 3

    def test_duplicate_instance_rejected(self, chain):
        with pytest.raises(TimingGraphError):
            chain.add_instance("u1", "INV")

    def test_reserved_port_instance_name(self, lib):
        d = Design("d", lib)
        with pytest.raises(TimingGraphError):
            d.add_instance("@port", "INV")

    def test_duplicate_port_rejected(self, chain):
        with pytest.raises(TimingGraphError):
            chain.add_input("a")
        with pytest.raises(TimingGraphError):
            chain.add_output("a")

    def test_duplicate_net_rejected(self, chain):
        with pytest.raises(TimingGraphError):
            chain.connect("na", ("u1", "y"), [("u2", "a")])

    def test_net_without_sinks_rejected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        with pytest.raises(TimingGraphError):
            d.connect("n", ("@port", "a"), [])

    def test_pin_double_connection_rejected(self, chain):
        chain_extra = chain
        with pytest.raises(TimingGraphError):
            chain_extra.connect("dup", ("u1", "y"), [("u2", "a")])

    def test_wrong_direction_rejected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_instance("u1", "INV")
        with pytest.raises(TimingGraphError):
            d.connect("n", ("u1", "a"), [("u1", "y")])  # input driving

    def test_undeclared_port_rejected(self, lib):
        d = Design("d", lib)
        d.add_instance("u1", "INV")
        with pytest.raises(TimingGraphError):
            d.connect("n", ("@port", "ghost"), [("u1", "a")])

    def test_unknown_instance_rejected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        with pytest.raises(TimingGraphError):
            d.connect("n", ("@port", "a"), [("nope", "a")])

    def test_unknown_pin_rejected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_instance("u1", "INV")
        with pytest.raises(TimingGraphError):
            d.connect("n", ("@port", "a"), [("u1", "qq")])


class TestValidation:
    def test_unconnected_pin_detected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u1", "NAND2")
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("nz", ("u1", "y"), [("@port", "z")])
        # u1.b left dangling.
        with pytest.raises(TimingGraphError):
            d.validate()

    def test_unconnected_port_detected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_input("unused")
        d.add_output("z")
        d.add_instance("u1", "INV")
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("nz", ("u1", "y"), [("@port", "z")])
        with pytest.raises(TimingGraphError):
            d.validate()

    def test_combinational_loop_detected(self, lib):
        d = Design("d", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u1", "NAND2")
        d.add_instance("u2", "INV")
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("n1", ("u1", "y"), [("u2", "a")])
        d.connect("n2", ("u2", "y"), [("u1", "b")])  # loop u1->u2->u1
        # z driven by nothing? give it a driver from the loop:
        with pytest.raises(TimingGraphError):
            d.validate()


class TestQueries:
    def test_net_of(self, chain):
        assert chain.net_of("u1", "y") == "n1"
        assert chain.net_of("@port", "a") == "na"
        with pytest.raises(TimingGraphError):
            chain.net_of("u1", "zz")

    def test_pin_str(self):
        assert str(Pin("u1", "a")) == "u1.a"
        assert str(Pin(Pin.PORT, "clk")) == "clk"

    def test_instance_graph_edges(self, chain):
        g = chain.instance_graph()
        assert g.has_edge("in:a", "u1")
        assert g.has_edge("u1", "u2")
        assert g.has_edge("u2", "out:z")
