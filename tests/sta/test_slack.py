"""Tests for backward required-time propagation and slack."""

import pytest

from repro._exceptions import TimingGraphError
from repro.sta import Design, Pin, analyze, default_library
from repro.sta.slack import compute_slacks


@pytest.fixture
def lib():
    return default_library()


@pytest.fixture
def chain(lib):
    d = Design("chain", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("u1", "INV")
    d.add_instance("u2", "INV")
    d.connect("na", ("@port", "a"), [("u1", "a")])
    d.connect("n1", ("u1", "y"), [("u2", "a")])
    d.connect("nz", ("u2", "y"), [("@port", "z")])
    return d


@pytest.fixture
def fanout(lib):
    d = Design("fan", lib)
    d.add_input("a")
    d.add_output("fast")
    d.add_output("slow")
    d.add_instance("drv", "BUF")
    d.add_instance("s1", "INV")
    d.add_instance("s2", "INV")
    d.connect("na", ("@port", "a"), [("drv", "a")])
    d.connect("nd", ("drv", "y"), [("s1", "a")])
    d.connect("n1", ("s1", "y"), [("s2", "a"), ("@port", "fast")])
    d.connect("n2", ("s2", "y"), [("@port", "slow")])
    return d


class TestChainSlack:
    def test_zero_slack_at_exact_requirement(self, chain):
        result = analyze(chain)
        report = compute_slacks(chain, result, result.critical_delay)
        assert report.worst_slack == pytest.approx(0.0, abs=1e-18)

    def test_positive_margin_everywhere(self, chain):
        result = analyze(chain)
        report = compute_slacks(
            chain, result, result.critical_delay + 50e-12
        )
        assert report.worst_slack == pytest.approx(50e-12, rel=1e-9)
        assert all(s >= report.worst_slack - 1e-18
                   for s in report.slack.values())

    def test_chain_slack_uniform(self, chain):
        """On a single path every pin carries the same slack."""
        result = analyze(chain)
        report = compute_slacks(chain, result, 1e-9)
        values = set(round(s / 1e-15) for s in report.slack.values())
        assert len(values) == 1

    def test_required_decreases_upstream(self, chain):
        result = analyze(chain)
        report = compute_slacks(chain, result, 1e-9)
        req_in = report.required[Pin(Pin.PORT, "a")]
        req_out = report.required[Pin(Pin.PORT, "z")]
        assert req_in < req_out


class TestFanoutSlack:
    def test_tightest_branch_dominates(self, fanout):
        result = analyze(fanout)
        # Tight requirement on the slow output only.
        report = compute_slacks(fanout, result, {
            "fast": 1e-9,
            "slow": result.arrival_at_output("slow"),
        })
        assert report.worst_slack == pytest.approx(0.0, abs=1e-18)
        # The fast endpoint keeps its generous slack.
        assert report.slack[Pin(Pin.PORT, "fast")] > 0.5e-9

    def test_shared_prefix_gets_min_requirement(self, fanout):
        result = analyze(fanout)
        report = compute_slacks(fanout, result, {
            "fast": 0.2e-9, "slow": 10e-9,
        })
        # The driver's slack is set by the fast (tight) branch.
        assert report.slack[Pin("drv", "y")] == pytest.approx(
            report.slack[Pin(Pin.PORT, "fast")], rel=1e-9
        )

    def test_critical_pins_listing(self, fanout):
        result = analyze(fanout)
        report = compute_slacks(fanout, result, result.critical_delay)
        pins = report.critical_pins(margin=1e-15)
        assert Pin(Pin.PORT, result.critical_output) in pins

    def test_slack_at_accessor(self, fanout):
        result = analyze(fanout)
        report = compute_slacks(fanout, result, 1e-9)
        assert report.slack_at("drv", "y") == report.slack[Pin("drv", "y")]
        with pytest.raises(TimingGraphError):
            report.slack_at("ghost", "y")

    def test_missing_required_rejected(self, fanout):
        result = analyze(fanout)
        with pytest.raises(TimingGraphError):
            compute_slacks(fanout, result, {"fast": 1e-9})


class TestDictRequired:
    def test_missing_output_error_names_the_outputs(self, fanout):
        result = analyze(fanout)
        with pytest.raises(TimingGraphError,
                           match=r"required times missing for outputs: "
                                 r"\['slow'\]"):
            compute_slacks(fanout, result, {"fast": 1e-9})
        # Unknown extra keys don't mask the missing ones.
        with pytest.raises(TimingGraphError, match="missing"):
            compute_slacks(fanout, result, {"fast": 1e-9, "ghost": 1e-9})

    def test_per_output_map_tighter_than_scalar(self, fanout):
        result = analyze(fanout)
        scalar = compute_slacks(fanout, result, 1e-9)
        mapped = compute_slacks(
            fanout, result, {"fast": 1e-9, "slow": 0.3e-9}
        )
        # Tightening one output can only shrink slacks, and must shrink
        # that output's own endpoint slack by exactly the delta.
        assert mapped.worst_slack <= scalar.worst_slack
        for pin, s in mapped.slack.items():
            assert s <= scalar.slack[pin] + 1e-18
        delta = 1e-9 - 0.3e-9
        assert mapped.slack[Pin(Pin.PORT, "slow")] == pytest.approx(
            scalar.slack[Pin(Pin.PORT, "slow")] - delta, rel=1e-12
        )
        # The untouched disjoint endpoint keeps its scalar slack.
        assert mapped.slack[Pin(Pin.PORT, "fast")] == pytest.approx(
            scalar.slack[Pin(Pin.PORT, "fast")], rel=1e-12
        )

    def test_equal_map_matches_scalar_exactly(self, fanout):
        result = analyze(fanout)
        scalar = compute_slacks(fanout, result, 1e-9)
        mapped = compute_slacks(
            fanout, result, {"fast": 1e-9, "slow": 1e-9}
        )
        assert mapped.slack == scalar.slack
        assert mapped.worst_pin == scalar.worst_pin


class TestCriticalPinsMargin:
    def test_zero_margin_keeps_ties(self, chain):
        # A single path carries one uniform slack: margin=0 must return
        # every pin, not just the arbitrary worst_pin tie-break winner.
        result = analyze(chain)
        report = compute_slacks(chain, result, 1e-9)
        pins = report.critical_pins(margin=0.0)
        assert set(pins) == set(report.slack)
        assert report.worst_pin in pins

    def test_margin_widens_monotonically(self, fanout):
        result = analyze(fanout)
        report = compute_slacks(
            fanout, result, {"fast": 0.2e-9, "slow": 10e-9}
        )
        tight = set(report.critical_pins(margin=0.0))
        sorted_slacks = sorted(report.slack.values())
        widest = sorted_slacks[-1] - report.worst_slack
        wide = set(report.critical_pins(margin=widest))
        assert tight <= wide
        assert wide == set(report.slack)
        # The slack-10ns branch endpoint is not critical at zero margin.
        assert Pin(Pin.PORT, "slow") not in tight


class TestConsistencyWithForward:
    def test_output_slack_matches_result_slack(self, chain):
        result = analyze(chain)
        report = compute_slacks(chain, result, 1e-9)
        assert report.slack[Pin(Pin.PORT, "z")] == pytest.approx(
            result.slack(1e-9, "z"), rel=1e-12
        )

    def test_elmore_slack_is_conservative(self, fanout):
        """Elmore-model slack <= exact-model slack at every pin (positive
        certified slack can only improve under the true delays)."""
        elmore = analyze(fanout, delay_model="elmore")
        exact = analyze(fanout, delay_model="exact")
        r_elmore = compute_slacks(fanout, elmore, 1e-9)
        r_exact = compute_slacks(fanout, exact, 1e-9)
        for pin, s in r_elmore.slack.items():
            assert s <= r_exact.slack[pin] + 1e-15
