"""Tests for slew (transition sigma) propagation in the STA."""

import numpy as np
import pytest

from repro.analysis import ExactAnalysis
from repro.core.moments import transfer_moments
from repro.sta import Design, Pin, analyze, default_library


@pytest.fixture
def lib():
    return default_library()


@pytest.fixture
def chain(lib):
    d = Design("chain", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("u1", "INV")
    d.add_instance("u2", "INV")
    d.connect("na", ("@port", "a"), [("u1", "a")])
    d.connect("n1", ("u1", "y"), [("u2", "a")])
    d.connect("nz", ("u2", "y"), [("@port", "z")])
    return d


class TestSlewPropagation:
    def test_slews_populated_everywhere(self, chain):
        result = analyze(chain)
        for pin in result.arrival:
            assert pin in result.slew
            assert result.slew[pin] >= 0.0

    def test_net_dispersion_additivity(self, chain):
        """sigma^2 at a sink = sigma^2 at the driver + mu_2(h_net)."""
        result = analyze(chain)
        elaborated = result.nets["n1"]
        moments = transfer_moments(elaborated.tree, 2)
        sink = Pin("u2", "a")
        node = elaborated.sink_nodes[sink]
        driver_slew = result.slew[Pin("u1", "y")]
        expected = np.sqrt(driver_slew**2 + moments.variance(node))
        assert result.slew[sink] == pytest.approx(expected, rel=1e-12)

    def test_gate_regenerates_slew(self, chain, lib):
        result = analyze(chain)
        assert result.slew[Pin("u1", "y")] == lib.get("INV").output_slew

    def test_input_slew_increases_delay(self, chain):
        sharp = analyze(chain)
        slow = analyze(chain, input_slews={"a": 100e-12})
        assert slow.critical_delay > sharp.critical_delay
        # The increase comes only from the first gate's slew impact.
        cell = chain.instances["u1"].cell
        slew_at_u1 = slow.slew[Pin("u1", "a")]
        slew_at_u1_sharp = sharp.slew[Pin("u1", "a")]
        expected_extra = cell.slew_impact * (slew_at_u1 - slew_at_u1_sharp)
        assert slow.critical_delay - sharp.critical_delay == pytest.approx(
            expected_extra, rel=1e-9
        )

    def test_slew_at_output_accessor(self, chain):
        result = analyze(chain)
        assert result.slew_at_output("z") == result.slew[Pin(Pin.PORT, "z")]
        from repro._exceptions import TimingGraphError
        with pytest.raises(TimingGraphError):
            result.slew_at_output("nope")

    def test_slew_grows_along_long_wire(self, chain, lib):
        """A heavy wire disperses the edge: sink slew >> driver slew."""
        from repro.circuit import rc_line
        tree = rc_line(12, 300.0, 0.3e-12, driver_resistance=400.0,
                       prefix="w")
        override = {"n1": (tree, {Pin("u2", "a"): "w12"})}
        result = analyze(chain, net_overrides=override)
        assert result.slew[Pin("u2", "a")] > 5 * result.slew[Pin("u1", "y")]

    def test_sigma_matches_exact_output_dispersion(self, chain):
        """The propagated sigma at a net sink equals the exact output
        derivative's standard deviation for a step-driven stage."""
        result = analyze(chain)
        elaborated = result.nets["na"]  # driven by an ideal port (slew 0)
        sink = Pin("u1", "a")
        node = elaborated.sink_nodes[sink]
        analysis = ExactAnalysis(elaborated.tree)
        transfer = analysis.transfer(node)
        # Exact sigma of h(t) from its moments.
        m1 = transfer.raw_moment(1)
        m2 = transfer.raw_moment(2)
        sigma_exact = np.sqrt(m2 - m1**2)
        assert result.slew[sink] == pytest.approx(sigma_exact, rel=1e-9)
