"""Tests for the statistical STA engine (canonical forms + Clark max)."""

import numpy as np
import pytest

from repro._exceptions import AnalysisError, TimingGraphError
from repro.core.variation import VariationModel, monte_carlo_delay_matrix
from repro.sta import Design, Pin, analyze, default_library
from repro.sta.ssta import (
    ProcessModel,
    analyze_ssta,
    monte_carlo_arrivals,
    validate_against_monte_carlo,
)
from repro.sta.timing import _delay_cache_of
from repro.workloads.generators import random_design

#: The repo's documented canonical-vs-Monte-Carlo tolerances.
MEAN_TOL = 0.01
SIGMA_TOL = 0.05


@pytest.fixture
def lib():
    return default_library()


@pytest.fixture
def chain(lib):
    d = Design("chain", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("u1", "INV")
    d.add_instance("u2", "INV")
    d.connect("na", ("@port", "a"), [("u1", "a")])
    d.connect("n1", ("u1", "y"), [("u2", "a")])
    d.connect("nz", ("u2", "y"), [("@port", "z")])
    return d


@pytest.fixture
def reconvergent(lib):
    """Two paths from one input reconverging on a NAND — the shape that
    breaks scalar-residual SSTA."""
    d = Design("recon", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("drv", "BUF")
    d.add_instance("p1", "INV")
    d.add_instance("p2", "BUF")
    d.add_instance("m", "NAND2")
    d.connect("na", ("@port", "a"), [("drv", "a")])
    d.connect("nd", ("drv", "y"), [("p1", "a"), ("p2", "a")])
    d.connect("n1", ("p1", "y"), [("m", "a")])
    d.connect("n2", ("p2", "y"), [("m", "b")])
    d.connect("nz", ("m", "y"), [("@port", "z")])
    return d


@pytest.fixture
def model():
    return ProcessModel(
        variation=VariationModel(
            resistance_sigma=0.08, capacitance_sigma=0.08
        ),
        rho_r=0.6, rho_c=0.6, cell_sigma=0.05, rho_cell=0.5,
    )


class TestProcessModel:
    def test_rho_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            ProcessModel(VariationModel(), rho_r=1.5)
        with pytest.raises(AnalysisError):
            ProcessModel(VariationModel(), rho_c=-0.1)

    def test_bad_cell_sigma_rejected(self):
        with pytest.raises(AnalysisError):
            ProcessModel(VariationModel(), cell_sigma=-0.2)
        with pytest.raises(AnalysisError):
            ProcessModel(VariationModel(), cell_sigma=float("inf"))

    def test_plain_variation_model_rejected(self, chain):
        with pytest.raises(AnalysisError):
            analyze_ssta(chain, VariationModel(resistance_sigma=0.1))


class TestZeroVariance:
    def test_degenerates_to_nominal(self, chain):
        model = ProcessModel(VariationModel())
        report = analyze_ssta(chain, model)
        nominal = report.nominal
        for pin, form in report.arrival.items():
            assert form.sigma == 0.0
            assert form.mu == pytest.approx(nominal.arrival[pin], rel=1e-12)
        assert report.critical.mu == pytest.approx(
            nominal.critical_delay, rel=1e-12
        )
        assert report.yield_at(nominal.critical_delay + 1e-15) == 1.0
        assert report.yield_at(nominal.critical_delay - 1e-15) == 0.0


class TestChain:
    def test_single_path_mean_is_nominal(self, chain, model):
        # No competing fan-in anywhere: Clark's max never fires, so the
        # statistical mean equals the deterministic arrival exactly.
        report = analyze_ssta(chain, model)
        assert report.critical.mu == pytest.approx(
            report.nominal.critical_delay, rel=1e-12
        )
        assert report.critical.sigma > 0.0

    def test_criticality_trivial(self, chain, model):
        report = analyze_ssta(chain, model)
        assert report.criticality["z"] == pytest.approx(1.0)
        assert report.pin_criticality[Pin(Pin.PORT, "a")] == pytest.approx(
            1.0
        )

    def test_deterministic_repeat(self, chain, model):
        r1 = analyze_ssta(chain, model)
        r2 = analyze_ssta(chain, model)
        assert r1.critical.mu == r2.critical.mu
        assert r1.critical.sigma == r2.critical.sigma


class TestMonteCarloValidation:
    def test_random_design_within_tolerance(self, model):
        design = random_design(layers=4, width=6, seed=3)
        val = validate_against_monte_carlo(
            design, model, samples=4000, seed=1
        )
        assert val.max_mean_rel_err <= MEAN_TOL
        assert val.max_sigma_rel_err <= SIGMA_TOL
        assert val.within(MEAN_TOL, SIGMA_TOL)

    def test_shm_backend_oracle_within_tolerance(self, model):
        # The acceptance gate: canonical mean/sigma vs the Monte-Carlo
        # oracle swept on the shm warm pool.
        design = random_design(layers=3, width=4, seed=7)
        val = validate_against_monte_carlo(
            design, model, samples=3000, seed=2, jobs=2, backend="shm"
        )
        assert val.max_mean_rel_err <= MEAN_TOL
        assert val.max_sigma_rel_err <= SIGMA_TOL

    def test_oracle_bit_identical_across_backends(self, model):
        design = random_design(layers=3, width=4, seed=5)
        ports, serial = monte_carlo_arrivals(design, model, 400, seed=11)
        ports2, shm = monte_carlo_arrivals(
            design, model, 400, seed=11, jobs=2, backend="shm"
        )
        assert ports == ports2
        assert np.array_equal(serial, shm)

    def test_net_forms_match_delay_matrix(self, model):
        # rho=0 reduces the process space to the exact independent
        # element model of monte_carlo_delay_matrix: per-sink canonical
        # sigma must match the per-tree MC column on the shm backend.
        independent = ProcessModel(
            VariationModel(resistance_sigma=0.1, capacitance_sigma=0.1),
            rho_r=0.0, rho_c=0.0, cell_sigma=0.0,
        )
        design = random_design(layers=3, width=4, seed=3)
        report = analyze_ssta(design, independent)
        name, elab = max(
            report.nominal.nets.items(), key=lambda kv: kv[1].tree.num_nodes
        )
        matrix = monte_carlo_delay_matrix(
            elab.tree, independent.variation, 6000, seed=9, backend="shm"
        )
        from repro.sta.ssta import _net_delay_forms

        forms = _net_delay_forms(
            name, elab, independent, _delay_cache_of(elab)[name]
        )
        for sink, node in elab.sink_nodes.items():
            column = matrix[:, elab.tree.index_of(node)]
            form = forms[sink]
            assert form.mu == pytest.approx(
                float(column.mean()), rel=MEAN_TOL
            )
            assert form.sigma == pytest.approx(
                float(column.std()), rel=SIGMA_TOL
            )

    def test_oracle_needs_process_model(self, chain):
        with pytest.raises(AnalysisError):
            monte_carlo_arrivals(chain, VariationModel(), 10)
        with pytest.raises(AnalysisError):
            monte_carlo_arrivals(
                chain,
                ProcessModel(VariationModel()),
                0,
            )


class TestReconvergence:
    def test_common_path_correlation_kept(self, reconvergent, model):
        # The stem (na/drv/nd) feeds both max operands; labeled
        # residuals keep them correlated, so the merged sigma stays
        # close to the MC truth instead of the root-sum-square answer.
        val = validate_against_monte_carlo(
            reconvergent, model, samples=6000, seed=4
        )
        assert val.max_mean_rel_err <= MEAN_TOL
        assert val.max_sigma_rel_err <= SIGMA_TOL

    def test_criticality_splits_over_branches(self, reconvergent, model):
        report = analyze_ssta(reconvergent, model)
        crit_a = report.pin_criticality[Pin("m", "a")]
        crit_b = report.pin_criticality[Pin("m", "b")]
        assert crit_a + crit_b == pytest.approx(1.0)
        assert 0.0 <= crit_a <= 1.0
        # Both flow back through the stem: the input port sees it all.
        assert report.pin_criticality[Pin(Pin.PORT, "a")] == pytest.approx(
            1.0
        )


class TestReport:
    @pytest.fixture
    def report(self, model):
        design = random_design(layers=4, width=6, seed=3)
        return analyze_ssta(design, model)

    def test_criticality_normalized(self, report):
        assert sum(report.criticality.values()) == pytest.approx(1.0)
        top = max(report.criticality, key=report.criticality.get)
        assert report.criticality[top] >= max(
            1.0 / len(report.criticality), 0.1
        )

    def test_input_criticality_sums_to_one(self, report):
        total = sum(
            weight for pin, weight in report.pin_criticality.items()
            if pin.instance == Pin.PORT and weight > 0.0
            and pin.pin not in report.outputs
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_yield_curve_monotone(self, report):
        ts = np.linspace(
            report.critical.mu - 4 * report.critical.sigma,
            report.critical.mu + 4 * report.critical.sigma,
            41,
        )
        curve = report.yield_curve(ts)
        values = [y for _, y in curve]
        assert values == sorted(values)
        assert values[0] < 0.01 and values[-1] > 0.99
        assert report.yield_at(report.critical.mu) == pytest.approx(0.5)

    def test_sigma_corners_ordered(self, report):
        corners = report.sigma_corners((1.0, 2.0, 3.0))
        assert corners[1.0] < corners[2.0] < corners[3.0]
        assert corners[3.0] == pytest.approx(
            report.critical.mu + 3 * report.critical.sigma
        )

    def test_prob_slack_negative_scalar_and_dict(self, report):
        req = report.critical.quantile(0.95)
        per = report.prob_slack_negative(req)
        assert set(per) == set(report.outputs)
        assert all(0.0 <= p <= 1.0 for p in per.values())
        # Dict form with one output tightened to its own mean.
        tight = {port: req for port in report.outputs}
        top = max(report.criticality, key=report.criticality.get)
        tight[top] = report.outputs[top].mu
        per_tight = report.prob_slack_negative(tight)
        assert per_tight[top] == pytest.approx(0.5)

    def test_fail_probability_bounds(self, report):
        req = report.critical.quantile(0.9)
        per = report.prob_slack_negative(req)
        fail = report.fail_probability(req)
        assert fail <= sum(per.values()) + 1e-9
        assert fail >= max(per.values()) - 0.02
        assert fail == pytest.approx(1.0 - report.yield_at(req), abs=0.02)

    def test_missing_required_rejected(self, report):
        some = dict.fromkeys(list(report.outputs)[:-1], 1.0)
        with pytest.raises(TimingGraphError, match="required times missing"):
            report.prob_slack_negative(some)

    def test_unknown_output_rejected(self, report):
        with pytest.raises(TimingGraphError):
            report.arrival_at_output("ghost")


class TestNominalReuse:
    def test_precomputed_nominal_reused(self, chain, model):
        nominal = analyze(chain, "elmore")
        report = analyze_ssta(chain, model, nominal=nominal)
        assert report.nominal is nominal

    def test_wrong_model_nominal_rejected(self, chain, model):
        nominal = analyze(chain, "exact")
        with pytest.raises(TimingGraphError):
            analyze_ssta(chain, model, nominal=nominal)

    def test_sharded_matches_serial(self, model):
        design = random_design(layers=3, width=4, seed=3)
        serial = analyze_ssta(design, model)
        sharded = analyze_ssta(design, model, jobs=2, backend="shm")
        for port in serial.outputs:
            assert serial.outputs[port].mu == sharded.outputs[port].mu
            assert (serial.outputs[port].sigma
                    == sharded.outputs[port].sigma)
