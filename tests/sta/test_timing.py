"""Unit and integration tests for the STA engine."""

import pytest

from repro._exceptions import TimingGraphError
from repro.circuit import RCTree
from repro.sta import (
    Design,
    Pin,
    WireLoadModel,
    analyze,
    default_library,
)


@pytest.fixture
def lib():
    return default_library()


def build_chain(lib, length=3):
    d = Design("chain", lib)
    d.add_input("a")
    d.add_output("z")
    previous = ("@port", "a")
    for k in range(length):
        name = f"u{k}"
        d.add_instance(name, "INV")
        d.connect(f"n{k}", previous, [(name, "a")])
        previous = (name, "y")
    d.connect("nz", previous, [("@port", "z")])
    return d


@pytest.fixture
def chain(lib):
    return build_chain(lib)


@pytest.fixture
def fanout_design(lib):
    """One driver, two reconvergent paths of different depth."""
    d = Design("fan", lib)
    d.add_input("a")
    d.add_output("z")
    d.add_instance("drv", "BUF")
    d.add_instance("fast", "INV")
    d.add_instance("slow1", "INV")
    d.add_instance("slow2", "INV")
    d.add_instance("merge", "NAND2")
    d.connect("na", ("@port", "a"), [("drv", "a")])
    d.connect("nd", ("drv", "y"), [("fast", "a"), ("slow1", "a")])
    d.connect("ns1", ("slow1", "y"), [("slow2", "a")])
    d.connect("nf", ("fast", "y"), [("merge", "a")])
    d.connect("ns2", ("slow2", "y"), [("merge", "b")])
    d.connect("nz", ("merge", "y"), [("@port", "z")])
    return d


class TestBasicAnalysis:
    def test_chain_delay_accumulates(self, lib):
        short = analyze(build_chain(lib, 2)).critical_delay
        long = analyze(build_chain(lib, 5)).critical_delay
        assert long > short

    def test_arrival_monotone_along_chain(self, chain):
        result = analyze(chain)
        a0 = result.arrival[Pin("u0", "y")]
        a1 = result.arrival[Pin("u1", "y")]
        a2 = result.arrival[Pin("u2", "y")]
        assert a0 < a1 < a2 < result.critical_delay

    def test_input_arrivals_shift_output(self, chain):
        base = analyze(chain).critical_delay
        shifted = analyze(chain, input_arrivals={"a": 1e-9}).critical_delay
        assert shifted == pytest.approx(base + 1e-9, rel=1e-9)

    def test_slack(self, chain):
        result = analyze(chain)
        assert result.slack(result.critical_delay) == pytest.approx(0.0)
        assert result.slack(result.critical_delay + 1e-12) > 0

    def test_unknown_model_rejected(self, chain):
        with pytest.raises(TimingGraphError):
            analyze(chain, delay_model="psychic")

    def test_unknown_output_port(self, chain):
        result = analyze(chain)
        with pytest.raises(TimingGraphError):
            result.arrival_at_output("nope")


class TestCriticalPath:
    def test_path_through_slow_branch(self, fanout_design):
        result = analyze(fanout_design)
        names = [e.name for e in result.critical_path()]
        assert "slow1" in names and "slow2" in names
        assert "fast" not in names

    def test_path_structure_alternates(self, chain):
        result = analyze(chain)
        path = result.critical_path()
        kinds = [e.kind for e in path]
        assert kinds[0] == "net"
        assert kinds[-1] == "net"
        assert "gate" in kinds

    def test_path_delays_sum_to_arrival(self, fanout_design):
        result = analyze(fanout_design)
        path = result.critical_path()
        assert sum(e.delay for e in path) == pytest.approx(
            result.critical_delay, rel=1e-9
        )

    def test_path_arrivals_increase(self, fanout_design):
        path = analyze(fanout_design).critical_path()
        arrivals = [e.arrival for e in path]
        assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))


class TestDelayModels:
    def test_elmore_upper_bounds_exact(self, fanout_design):
        """The paper's theorem lifts to whole-path certification."""
        elmore = analyze(fanout_design, delay_model="elmore")
        exact = analyze(fanout_design, delay_model="exact")
        assert elmore.critical_delay >= exact.critical_delay
        # Per-pin containment too.
        for pin, t in exact.arrival.items():
            assert elmore.arrival[pin] >= t * (1 - 1e-12)

    def test_lower_bound_model_below_exact(self, fanout_design):
        lower = analyze(fanout_design, delay_model="lower_bound")
        exact = analyze(fanout_design, delay_model="exact")
        assert lower.critical_delay <= exact.critical_delay

    def test_metric_models_run(self, chain):
        for model in ("d2m", "lognormal", "two_pole", "ln2_elmore"):
            result = analyze(chain, delay_model=model)
            assert result.critical_delay > 0

    def test_wire_load_scaling(self, chain):
        light = analyze(chain, wire_load=WireLoadModel(10.0, 1e-15))
        heavy = analyze(chain, wire_load=WireLoadModel(500.0, 50e-15))
        assert heavy.critical_delay > light.critical_delay


class TestNetOverrides:
    def test_override_changes_delay(self, chain):
        # Replace n1 with a long RC line (driver R included).
        tree = RCTree("in")
        tree.add_node("drv", "in", 400.0, 0.0)
        parent = "drv"
        for k in range(10):
            tree.add_node(f"w{k}", parent, 200.0, 0.2e-12)
            parent = f"w{k}"
        override = {"n1": (tree, {Pin("u1", "a"): parent})}
        base = analyze(chain).critical_delay
        slow = analyze(chain, net_overrides=override).critical_delay
        assert slow > base * 2

    def test_override_must_cover_sinks(self, chain):
        tree = RCTree("in")
        tree.add_node("drv", "in", 400.0, 1e-15)
        override = {"n1": (tree, {})}
        with pytest.raises(TimingGraphError):
            analyze(chain, net_overrides=override)


class TestGeometryRouting:
    def test_positions_trigger_routed_nets(self, lib):
        d = Design("placed", lib)
        d.add_input("a")
        d.add_output("z")
        d.add_instance("u1", "INV", position=(0.0, 0.0))
        d.add_instance("u2", "INV", position=(300e-6, 200e-6))
        d.connect("na", ("@port", "a"), [("u1", "a")])
        d.connect("n1", ("u1", "y"), [("u2", "a")])
        d.connect("nz", ("u2", "y"), [("@port", "z")])
        result = analyze(d)
        # The routed net carries real wire capacitance.
        routed = result.nets["n1"]
        assert routed.tree.total_capacitance() > 10e-15

    def test_farther_placement_is_slower(self, lib):
        def placed(distance):
            d = Design("placed", lib)
            d.add_input("a")
            d.add_output("z")
            d.add_instance("u1", "INV", position=(0.0, 0.0))
            d.add_instance("u2", "INV", position=(distance, 0.0))
            d.connect("na", ("@port", "a"), [("u1", "a")])
            d.connect("n1", ("u1", "y"), [("u2", "a")])
            d.connect("nz", ("u2", "y"), [("@port", "z")])
            return analyze(d).critical_delay

        assert placed(2000e-6) > placed(100e-6)


class TestAllMetricModels:
    def test_every_registered_model_runs(self, fanout_design):
        """Every DELAY_MODELS key completes an analysis; moment-fit
        failures fall back to Elmore instead of aborting."""
        from repro.sta.timing import DELAY_MODELS
        exact = analyze(fanout_design, delay_model="exact").critical_delay
        for model in DELAY_MODELS:
            result = analyze(fanout_design, delay_model=model)
            assert result.critical_delay > 0
            # No metric should be wildly off the exact answer.
            assert 0.2 * exact < result.critical_delay < 5.0 * exact
