"""Public API surface tests: exports exist, exceptions are coherent."""

import pytest

import repro
from repro import _exceptions


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.awe
        import repro.circuit
        import repro.core
        import repro.opt
        import repro.routing
        import repro.signals
        import repro.sta
        import repro.workloads

        for module in (
            repro.analysis, repro.awe, repro.circuit, repro.core,
            repro.opt, repro.routing, repro.signals, repro.sta,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__} missing export {name}"
                )


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in _exceptions.__all__:
            exc = getattr(_exceptions, name)
            assert issubclass(exc, _exceptions.ReproError)

    def test_convergence_is_analysis_error(self):
        assert issubclass(
            _exceptions.ConvergenceError, _exceptions.AnalysisError
        )

    def test_catchable_at_top_level(self):
        from repro import RCTree, ReproError
        tree = RCTree("in")
        with pytest.raises(ReproError):
            tree.add_node("a", "ghost", 10.0)
