"""Differential pinning of the benchmark row-file schema.

Every benchmark persists ``benchmarks/results/<name>.json`` through
:func:`benchmarks._helpers.report` under the ``repro.bench_rows/1``
schema tag.  Downstream tooling diffs those files across runs, so their
shape is a public contract: these tests pin the top-level keys, the
string-typed row cells, and ``bench_parallel``'s exact header — and a
regression asserts that the serial Monte-Carlo baseline the bench pins
its determinism gate against produces identical rows before and after a
shared-memory backend run (the shm transport must not perturb the
serial bits it is compared to).
"""

import numpy as np
import pytest

from benchmarks import _helpers
from benchmarks._helpers import ROW_SCHEMA, load_rows, report

from repro.circuit import balanced_tree
from repro.core.variation import VariationModel, monte_carlo_delay_matrix

#: The exact column set ``bench_parallel.py`` tabulates.  Extending the
#: bench means extending this pin in the same change — row files are
#: diffed by external tooling, so column drift must be deliberate.
PARALLEL_BENCH_HEADER = [
    "jobs", "nodes", "samples", "wall clock", "speedup", "bit-identical",
]
PARALLEL_SHM_BENCH_HEADER = [
    "backend", "jobs", "nodes", "samples", "wall clock", "speedup",
    "bit-identical",
]

#: Top-level keys of every ``<name>.json`` row file, exactly.
ROW_FILE_KEYS = {
    "schema", "name", "title", "generated_at", "quick", "environment",
    "header", "rows", "extra",
}


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(_helpers, "RESULTS_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture(autouse=True)
def parallel_teardown():
    yield
    import repro.parallel

    repro.parallel.shutdown()


class TestRowFileSchema:
    def test_schema_tag_is_pinned(self):
        assert ROW_SCHEMA == "repro.bench_rows/1"

    def test_report_round_trips_under_the_pinned_schema(self, results_dir):
        report(
            "schema_probe",
            "probe title",
            PARALLEL_BENCH_HEADER,
            [[1, 511, 600, "10.0 ms", "1.00x", "yes"],
             [2, 511, 600, "5.0 ms", "2.00x", "yes"]],
            extra={"cores": 2},
        )
        payload = load_rows("schema_probe")
        assert payload["schema"] == ROW_SCHEMA
        assert set(payload) == ROW_FILE_KEYS
        assert payload["header"] == PARALLEL_BENCH_HEADER
        # Every cell is serialized as a string — numeric cells included —
        # so diffs never churn on int-vs-float formatting.
        assert all(
            isinstance(cell, str) for row in payload["rows"] for cell in row
        )
        assert payload["rows"][0] == \
            ["1", "511", "600", "10.0 ms", "1.00x", "yes"]
        assert payload["extra"] == {"cores": 2}
        assert (results_dir / "schema_probe.txt").exists()

    def test_text_table_mirrors_the_rows(self, results_dir):
        report("mirror", "t", ["a", "b"], [[1, 2]])
        text = (results_dir / "mirror.txt").read_text()
        for cell in ("a", "b", "1", "2"):
            assert cell in text


class TestSerialBaselineUnperturbed:
    """``bench_parallel``'s determinism gate compares every backend to
    the serial sweep; that baseline must be byte-stable across shm
    activity in the same process."""

    def test_serial_rows_identical_before_and_after_shm(self):
        tree = balanced_tree(5, 2, 25.0, 8e-15, driver_resistance=120.0,
                             leaf_load=4e-15)
        model = VariationModel(resistance_sigma=0.1,
                               capacitance_sigma=0.1)

        def serial_row():
            matrix = monte_carlo_delay_matrix(tree, model, 90, seed=1995)
            return [
                "serial", "1", str(tree.num_nodes), "90",
                matrix.tobytes(),
            ]

        before = serial_row()
        shm = monte_carlo_delay_matrix(
            tree, model, 90, seed=1995, jobs=2, backend="shm"
        )
        after = serial_row()
        assert before == after
        np.testing.assert_array_equal(
            np.frombuffer(after[-1]).reshape(90, tree.num_nodes), shm
        )
