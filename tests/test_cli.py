"""Tests for the command-line interface."""

import argparse

import pytest

from repro.circuit import tree_to_netlist
from repro.cli import main, parse_signal_spec
from repro.signals import (
    ExponentialInput,
    RaisedCosineRamp,
    SaturatedRamp,
    SmoothstepRamp,
    StepInput,
)
from repro.workloads import fig1_tree


@pytest.fixture
def netlist_path(tmp_path):
    path = tmp_path / "fig1.sp"
    path.write_text(tree_to_netlist(fig1_tree(), title="fig1"))
    return str(path)


class TestSignalSpec:
    def test_step(self):
        assert isinstance(parse_signal_spec("step"), StepInput)

    def test_ramp_with_units(self):
        sig = parse_signal_spec("ramp:2ns")
        assert isinstance(sig, SaturatedRamp)
        assert sig.rise_time == pytest.approx(2e-9)

    def test_other_kinds(self):
        assert isinstance(parse_signal_spec("cosine:1ns"), RaisedCosineRamp)
        assert isinstance(parse_signal_spec("smoothstep:1ns"), SmoothstepRamp)
        sig = parse_signal_spec("exp:500ps")
        assert isinstance(sig, ExponentialInput)
        assert sig.tau == pytest.approx(500e-12)

    def test_plain_seconds(self):
        assert parse_signal_spec("ramp:2e-9").rise_time == pytest.approx(2e-9)

    def test_bad_specs(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_signal_spec("ramp")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_signal_spec("magic:1ns")


class TestAnalyze:
    def test_all_nodes(self, netlist_path, capsys):
        assert main(["analyze", netlist_path]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "elmore" in out

    def test_node_subset(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "n5,n7"]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "n7" in out
        assert "\nn1 " not in out

    def test_table1_values_appear(self, netlist_path, capsys):
        main(["analyze", netlist_path, "--nodes", "n5"])
        out = capsys.readouterr().out
        assert "0.919" in out      # actual delay
        assert "1.2" in out        # elmore

    def test_ramp_signal(self, netlist_path, capsys):
        assert main(
            ["analyze", netlist_path, "--signal", "ramp:2ns"]
        ) == 0
        out = capsys.readouterr().out
        assert "saturated ramp" in out
        assert "prh" not in out    # PRH columns are step-only

    def test_unknown_node(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "zz"]) == 2

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.sp"]) == 2

    def test_bad_netlist(self, tmp_path, capsys):
        path = tmp_path / "bad.sp"
        path.write_text("R1 a b 100\nC1 b 0 1p\n")  # no source
        assert main(["analyze", str(path)]) == 1


class TestVerify:
    def test_claims_hold(self, netlist_path, capsys):
        assert main(["verify", netlist_path]) == 0
        out = capsys.readouterr().out
        assert "all claims hold" in out
        assert out.count("[ok]") == 7


class TestPaperTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "0.919" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "A" in out and "%" in out
