"""Tests for the command-line interface."""

import argparse
import json

import pytest

from repro.circuit import tree_to_netlist
from repro.cli import main, parse_signal_spec, parse_time_spec
from repro.signals import (
    ExponentialInput,
    RaisedCosineRamp,
    SaturatedRamp,
    SmoothstepRamp,
    StepInput,
)
from repro.workloads import fig1_tree


@pytest.fixture
def netlist_path(tmp_path):
    path = tmp_path / "fig1.sp"
    path.write_text(tree_to_netlist(fig1_tree(), title="fig1"))
    return str(path)


class TestSignalSpec:
    def test_step(self):
        assert isinstance(parse_signal_spec("step"), StepInput)

    def test_ramp_with_units(self):
        sig = parse_signal_spec("ramp:2ns")
        assert isinstance(sig, SaturatedRamp)
        assert sig.rise_time == pytest.approx(2e-9)

    def test_other_kinds(self):
        assert isinstance(parse_signal_spec("cosine:1ns"), RaisedCosineRamp)
        assert isinstance(parse_signal_spec("smoothstep:1ns"), SmoothstepRamp)
        sig = parse_signal_spec("exp:500ps")
        assert isinstance(sig, ExponentialInput)
        assert sig.tau == pytest.approx(500e-12)

    def test_plain_seconds(self):
        assert parse_signal_spec("ramp:2e-9").rise_time == pytest.approx(2e-9)

    def test_bad_specs(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_signal_spec("ramp")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_signal_spec("magic:1ns")


class TestAnalyze:
    def test_all_nodes(self, netlist_path, capsys):
        assert main(["analyze", netlist_path]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "elmore" in out

    def test_node_subset(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "n5,n7"]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "n7" in out
        assert "\nn1 " not in out

    def test_table1_values_appear(self, netlist_path, capsys):
        main(["analyze", netlist_path, "--nodes", "n5"])
        out = capsys.readouterr().out
        assert "0.919" in out      # actual delay
        assert "1.2" in out        # elmore

    def test_ramp_signal(self, netlist_path, capsys):
        assert main(
            ["analyze", netlist_path, "--signal", "ramp:2ns"]
        ) == 0
        out = capsys.readouterr().out
        assert "saturated ramp" in out
        assert "prh" not in out    # PRH columns are step-only

    def test_unknown_node(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "zz"]) == 2

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.sp"]) == 2

    def test_bad_netlist(self, tmp_path, capsys):
        path = tmp_path / "bad.sp"
        path.write_text("R1 a b 100\nC1 b 0 1p\n")  # no source
        assert main(["analyze", str(path)]) == 1


class TestVerify:
    def test_claims_hold(self, netlist_path, capsys):
        assert main(["verify", netlist_path]) == 0
        out = capsys.readouterr().out
        assert "all claims hold" in out
        assert out.count("[ok]") == 7


class TestPaperTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "n5" in out and "0.919" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "A" in out and "%" in out


class TestTimeSpec:
    def test_units(self):
        from repro._exceptions import ValidationError

        assert parse_time_spec("2ns") == pytest.approx(2e-9)
        assert parse_time_spec("500ps") == pytest.approx(5e-10)
        assert parse_time_spec("1e-9") == pytest.approx(1e-9)
        with pytest.raises(ValidationError):
            parse_time_spec("fast")
        with pytest.raises(ValidationError):
            parse_time_spec("0ns")
        with pytest.raises(ValidationError):
            parse_time_spec("-2ns")


class TestValidation:
    """Bad numeric flags exit 2 with a usage message, never a traceback."""

    def test_negative_samples(self, netlist_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", netlist_path, "--samples", "-5"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--samples must be >= 0" in err

    def test_non_integer_samples(self, netlist_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", netlist_path, "--samples", "many"])
        assert excinfo.value.code == 2
        assert "--samples must be an integer" in capsys.readouterr().err

    def test_negative_sigma(self, netlist_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", netlist_path, "--rsigma", "-0.1"])
        assert excinfo.value.code == 2
        assert "--rsigma must be >= 0" in capsys.readouterr().err

    def test_too_few_points(self, netlist_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["waveform", netlist_path, "n5", "--points", "1"])
        assert excinfo.value.code == 2
        assert "--points must be >= 2" in capsys.readouterr().err

    def test_negative_signal_time(self, netlist_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", netlist_path, "--signal", "ramp:-2ns"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be > 0" in err and "Traceback" not in err


class TestObservabilityFlags:
    def test_trace_prints_span_tree(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "n5",
                     "--trace"]) == 0
        err = capsys.readouterr().err
        assert "repro.analyze" in err
        assert "cum" in err and "self" in err

    def test_trace_out_report_round_trip(self, netlist_path, tmp_path,
                                         capsys):
        out = str(tmp_path / "run.json")
        assert main(["stats", netlist_path, "--samples", "50",
                     "--seed", "3", "--trace-out", out]) == 0
        capsys.readouterr()
        report = json.loads(open(out).read())
        assert report["schema"] == "repro.run_report/2"
        assert report["command"] == "repro stats"
        assert report["seed"] == 3
        names = {s["name"] for s in report["spans"]}
        assert "repro.stats" in names
        # The report subcommand renders it back.
        assert main(["report", out]) == 0
        text = capsys.readouterr().out
        assert "repro.stats" in text
        assert "batch.elmore_delays" in text

    def test_report_rejects_non_report(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "a report"}))
        assert main(["report", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_needs_file_or_compare(self, capsys):
        assert main(["report"]) == 2
        assert "--compare" in capsys.readouterr().err

    def test_metrics_port_starts_live_endpoint(self, netlist_path,
                                               capsys):
        assert main(["analyze", netlist_path, "--nodes", "n5",
                     "--metrics-port", "0"]) == 0
        # The chosen ephemeral port is announced on stdout so scripts
        # can capture it.
        out = capsys.readouterr().out
        assert "metrics server listening on http://127.0.0.1:" in out

    def test_report_compare_gates_trajectory(self, tmp_path, capsys):
        from repro.obs.trajectory import append_record, record_from_rows

        ledger = str(tmp_path / "trajectory.jsonl")

        def payload(speedup):
            return {
                "schema": "repro.bench_rows/1", "name": "bench_y",
                "title": "t", "generated_at": "2026-08-07T00:00:00Z",
                "quick": True,
                "environment": {"python": "3.11", "platform": "L",
                                "machine": "x", "cpu_count": 2,
                                "implementation": "CPython"},
                "header": ["n"], "rows": [["1"]],
                "extra": {"speedup": {"256": speedup}},
            }

        append_record(ledger, record_from_rows(payload(5.0), "r0"))
        append_record(ledger, record_from_rows(payload(5.2), "r1"))
        assert main(["report", "--compare", "--trajectory", ledger]) == 0
        assert "no regressions" in capsys.readouterr().out
        # Inject a synthetic slowdown: the gate must fail readably.
        append_record(ledger, record_from_rows(payload(1.0), "r2"))
        assert main(["report", "--compare", "--trajectory", ledger]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "speedup.256" in out
        # Explicit selectors: the two healthy runs still compare clean.
        assert main(["report", "--compare", "2", "1",
                     "--trajectory", ledger]) == 0
        capsys.readouterr()

    def test_metrics_out_json(self, netlist_path, tmp_path, capsys):
        out = str(tmp_path / "metrics.json")
        assert main(["verify", netlist_path, "--metrics-out", out]) == 0
        metrics = json.loads(open(out).read())
        assert metrics["verify_nodes_total"]["value"] >= 7
        assert metrics["verify_samples_total"]["kind"] == "counter"

    def test_metrics_out_prometheus(self, netlist_path, tmp_path, capsys):
        out = str(tmp_path / "metrics.prom")
        assert main(["analyze", netlist_path, "--nodes", "n5",
                     "--metrics-out", out]) == 0
        text = open(out).read()
        assert "# TYPE topology_compile_total counter" in text

    def test_tracing_disabled_after_run(self, netlist_path, capsys):
        from repro.obs import tracing_enabled

        assert main(["analyze", netlist_path, "--nodes", "n5",
                     "--trace"]) == 0
        assert not tracing_enabled()

    def test_no_flags_no_observability_output(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--nodes", "n5"]) == 0
        err = capsys.readouterr().err
        assert err == ""


class TestResilienceFlags:
    def test_stats_checkpoint_resume_round_trip(self, netlist_path,
                                                tmp_path, capsys):
        journal = str(tmp_path / "stats.ckpt")
        base = ["stats", netlist_path, "--samples", "16", "--seed", "5"]

        assert main(base + ["--checkpoint", journal]) == 0
        reference = capsys.readouterr().out
        assert "monte carlo" in reference

        # Simulate a kill after the first journaled shard, then resume:
        # the printed table must be identical to the uninterrupted run.
        with open(journal, "rb") as handle:
            lines = handle.readlines()
        assert len(lines) >= 2  # header + at least one shard record
        with open(journal, "wb") as handle:
            handle.writelines(lines[:2])
        assert main(base + ["--checkpoint", journal, "--resume"]) == 0
        assert capsys.readouterr().out == reference

    def test_resume_refuses_foreign_journal(self, netlist_path,
                                            tmp_path, capsys):
        journal = str(tmp_path / "stats.ckpt")
        assert main(["stats", netlist_path, "--samples", "16",
                     "--seed", "5", "--checkpoint", journal]) == 0
        capsys.readouterr()
        # Same journal, different seed => different fingerprint.
        assert main(["stats", netlist_path, "--samples", "16",
                     "--seed", "6", "--checkpoint", journal,
                     "--resume"]) == 1
        assert "different run" in capsys.readouterr().err

    def test_inject_faults_runs_and_disarms(self, netlist_path, capsys):
        import os

        from repro.resilience.faults import ENV_SPEC, active_schedule

        assert main(["verify", netlist_path]) == 0
        reference = capsys.readouterr().out
        # A benign fault (zero-delay slow shards) must not change one
        # output character, and the schedule must be disarmed on exit.
        assert main(["verify", netlist_path, "--jobs", "1",
                     "--inject-faults",
                     "shard.slow:times=inf,delay=0",
                     "--fault-seed", "3"]) == 0
        assert capsys.readouterr().out == reference
        assert active_schedule() is None
        assert ENV_SPEC not in os.environ

    def test_bad_fault_spec_is_a_clean_error(self, netlist_path, capsys):
        assert main(["verify", netlist_path, "--inject-faults",
                     "no.such.point"]) == 1
        assert "unknown fault point" in capsys.readouterr().err


class TestSstaCommand:
    def test_round_trip_with_oracle(self, capsys):
        assert main(["ssta", "--layers", "3", "--width", "4",
                     "--samples", "1200", "--required", "2.5e-10"]) == 0
        out = capsys.readouterr().out
        assert "critical delay: mu" in out and "sigma" in out
        assert "sigma corners:" in out
        assert "yield" in out and "P(slack<0)" in out
        assert "monte-carlo oracle (1200 samples)" in out
        assert "WARNING" not in out

    def test_sharded_matches_serial(self, capsys):
        assert main(["ssta", "--layers", "3", "--width", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["ssta", "--layers", "3", "--width", "4",
                     "--jobs", "2", "--backend", "shm"]) == 0
        sharded = capsys.readouterr().out
        # Identical numbers; only the "N jobs" banner differs.
        strip = ", 2 jobs"
        assert sharded.replace(strip, "") == serial

    def test_bad_correlation_rejected(self, capsys):
        assert main(["ssta", "--correlation", "1.5"]) != 0
        assert "correlation fraction" in capsys.readouterr().err
