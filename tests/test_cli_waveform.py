"""Tests for the CLI waveform subcommand."""

import pytest

from repro.circuit import tree_to_netlist
from repro.cli import main
from repro.workloads import fig1_tree


@pytest.fixture
def netlist_path(tmp_path):
    path = tmp_path / "fig1.sp"
    path.write_text(tree_to_netlist(fig1_tree(), title="fig1"))
    return str(path)


class TestWaveform:
    def test_ascii_render(self, netlist_path, capsys):
        assert main(["waveform", netlist_path, "n5"]) == 0
        out = capsys.readouterr().out
        assert "waveform at n5" in out
        assert "50% delay" in out
        assert out.count("|") >= 36  # 18 grid rows, two pipes each

    def test_csv_export(self, netlist_path, tmp_path, capsys):
        csv = tmp_path / "wave.csv"
        assert main([
            "waveform", netlist_path, "n5",
            "--signal", "ramp:2ns", "--csv", str(csv),
            "--points", "101",
        ]) == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "time_s,input_v,output_v"
        assert len(lines) == 102
        # Output never exceeds input (causal averaging).
        for line in lines[1:]:
            _, vin, vout = map(float, line.split(","))
            assert vout <= vin + 1e-9

    def test_unknown_node(self, netlist_path):
        assert main(["waveform", netlist_path, "zz"]) == 2

    def test_delay_value_in_output(self, netlist_path, capsys):
        main(["waveform", netlist_path, "n5"])
        out = capsys.readouterr().out
        assert "0.919" in out  # step-input 50% delay at n5


class TestStats:
    def test_stats_table(self, netlist_path, capsys):
        assert main([
            "stats", netlist_path, "--nodes", "n5",
            "--rsigma", "0.12", "--csigma", "0.08",
        ]) == 0
        out = capsys.readouterr().out
        assert "3-sigma" in out and "n5" in out
        assert "1.2" in out  # nominal Elmore at n5

    def test_stats_unknown_node(self, netlist_path):
        assert main(["stats", netlist_path, "--nodes", "zz"]) == 2
