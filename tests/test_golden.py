"""Golden regression tests for the paper-reproduction numbers.

The benchmarks regenerate Table I / Table II and assert the paper's
qualitative orderings, but a perf-focused PR could still drift the
computed values within those loose tolerances.  These tests pin today's
computed numbers to goldens stored under ``tests/data/`` at tight
tolerance, and pin the ``bench_scaling`` complexity ordering (the O(N)
moment recursion beats dense MNA extraction) so neither can change
silently.

Regenerating the goldens after an *intentional* numerical change:
recompute the same quantities (see the helpers below — they mirror
``benchmarks/bench_table1.py``/``bench_table2.py``) and rewrite the JSON
files with full float precision.
"""

import json
import math
import os
import time

import pytest

from repro.analysis import ExactAnalysis, measure_delay
from repro.analysis.mna import mna_transfer_moments
from repro.circuit import rc_line
from repro.core import elmore_delay, prh_delay_interval, transfer_moments
from repro.signals import SaturatedRamp
from repro.workloads import (
    FIG1_PROBES,
    TABLE2_RISE_TIMES,
    TREE25_PROBES,
    fig1_tree,
    tree25,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

# Tight enough to catch any algorithmic drift, loose enough to absorb
# BLAS/libm differences across machines.
GOLDEN_RTOL = 1e-6


def load_golden(name):
    with open(os.path.join(DATA_DIR, name), encoding="utf-8") as handle:
        return json.load(handle)


class TestTable1Golden:
    @pytest.fixture(scope="class")
    def computed(self):
        tree = fig1_tree()
        analysis = ExactAnalysis(tree)
        moments = transfer_moments(tree, 2)
        rows = {}
        for node in FIG1_PROBES:
            td = moments.mean(node)
            tmin, tmax = prh_delay_interval(tree, node)
            rows[node] = {
                "actual": measure_delay(analysis, node),
                "elmore": td,
                "lower": max(td - moments.sigma(node), 0.0),
                "single_pole": math.log(2.0) * td,
                "prh_tmax": tmax,
                "prh_tmin": tmin,
            }
        return rows

    def test_every_column_pinned(self, computed):
        golden = load_golden("table1_golden.json")
        assert set(computed) == set(golden)
        for node, row in golden.items():
            for column, value in row.items():
                assert computed[node][column] == pytest.approx(
                    value, rel=GOLDEN_RTOL, abs=1e-30
                ), f"Table I {node}/{column} drifted"


class TestTable2Golden:
    @pytest.fixture(scope="class")
    def computed(self):
        tree = tree25()
        analysis = ExactAnalysis(tree)
        rows = {}
        for probe, node in TREE25_PROBES.items():
            td = elmore_delay(tree, node)
            entries = []
            for rise in TABLE2_RISE_TIMES:
                delay = measure_delay(analysis, node, SaturatedRamp(rise))
                entries.append(
                    {"rise_time": rise, "delay": delay,
                     "relative_error": (delay - td) / delay}
                )
            rows[probe] = {"node": node, "elmore": td, "entries": entries}
        return rows

    def test_every_entry_pinned(self, computed):
        golden = load_golden("table2_golden.json")
        assert set(computed) == set(golden)
        for probe, row in golden.items():
            assert computed[probe]["node"] == row["node"]
            assert computed[probe]["elmore"] == pytest.approx(
                row["elmore"], rel=GOLDEN_RTOL
            )
            for got, want in zip(computed[probe]["entries"],
                                 row["entries"]):
                assert got["rise_time"] == pytest.approx(want["rise_time"])
                assert got["delay"] == pytest.approx(
                    want["delay"], rel=GOLDEN_RTOL
                ), f"Table II {probe} delay drifted"
                assert got["relative_error"] == pytest.approx(
                    want["relative_error"], rel=1e-4, abs=1e-9
                )


class TestScalingOrderingGolden:
    def test_path_tracing_beats_dense_mna(self):
        """The ``bench_scaling`` ordering, pinned in tier-1: at N=512 the
        O(N) moment recursion must stay decisively cheaper than dense MNA
        extraction (threshold well under the ~5x measured today so only a
        complexity regression — not machine noise — can trip it)."""
        tree = rc_line(512, 25.0, 30e-15, driver_resistance=180.0)

        def best(fn, *args, repeats=5):
            best_time = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn(*args)
                best_time = min(best_time, time.perf_counter() - start)
            return best_time

        t_recursion = best(transfer_moments, tree, 3)
        t_dense = best(mna_transfer_moments, tree, 3)
        assert t_dense > 1.5 * t_recursion, (
            f"dense MNA ({t_dense * 1e3:.2f} ms) no longer clearly slower "
            f"than the O(N) recursion ({t_recursion * 1e3:.2f} ms)"
        )
