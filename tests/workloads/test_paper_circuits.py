"""Tests pinning the reconstructed paper circuits to the printed tables."""

import math

import pytest

from repro.analysis import ExactAnalysis, measure_delay
from repro.core import (
    delay_lower_bound,
    elmore_delay,
    prh_delay_interval,
    transfer_moments,
)
from repro.signals import SaturatedRamp
from repro.workloads import (
    FIG1_PROBES,
    TABLE1_PAPER,
    TABLE2_PAPER,
    TABLE2_RISE_TIMES,
    TREE25_PROBES,
    fig1_tree,
    tree25,
)


class TestFig1Table1:
    """Every column of Table I within tight tolerance of the print."""

    @pytest.fixture(scope="class")
    def tree(self):
        return fig1_tree()

    @pytest.fixture(scope="class")
    def analysis(self, tree):
        return ExactAnalysis(tree)

    @pytest.mark.parametrize("node", FIG1_PROBES)
    def test_actual_delay_column(self, tree, analysis, node):
        actual, *_ = TABLE1_PAPER[node]
        assert measure_delay(analysis, node) == pytest.approx(
            actual, rel=1.5e-2
        )

    @pytest.mark.parametrize("node", FIG1_PROBES)
    def test_elmore_column(self, tree, node):
        elmore = TABLE1_PAPER[node][1]
        assert elmore_delay(tree, node) == pytest.approx(elmore, rel=5e-3)

    @pytest.mark.parametrize("node", FIG1_PROBES)
    def test_lower_bound_column(self, tree, node):
        lower = TABLE1_PAPER[node][2]
        got = delay_lower_bound(tree, node)
        if lower == 0.0:
            assert got == 0.0
        else:
            assert got == pytest.approx(lower, rel=5e-2)

    @pytest.mark.parametrize("node", FIG1_PROBES)
    def test_single_pole_column(self, tree, node):
        # The paper's column is ln2 times its (rounded) T_D.
        assert math.log(2) * elmore_delay(tree, node) == pytest.approx(
            TABLE1_PAPER[node][3], rel=1.5e-2
        )

    @pytest.mark.parametrize("node", FIG1_PROBES)
    def test_prh_columns(self, tree, node):
        _, _, _, _, tmax, tmin = TABLE1_PAPER[node]
        got_min, got_max = prh_delay_interval(tree, node)
        assert got_max == pytest.approx(tmax, rel=1.5e-2)
        if tmin == 0.0:
            assert got_min == 0.0
        else:
            assert got_min == pytest.approx(tmin, rel=5e-2)

    def test_topology(self, tree):
        assert tree.num_nodes == 7
        assert set(tree.leaves()) == {"n5", "n7"}


class TestTree25Table2:
    """Table II's error shape: errors fall with distance and rise time."""

    @pytest.fixture(scope="class")
    def tree(self):
        return tree25()

    @pytest.fixture(scope="class")
    def analysis(self, tree):
        return ExactAnalysis(tree)

    def test_node_count(self, tree):
        assert tree.num_nodes == 25

    @pytest.mark.parametrize("probe", ["A", "B", "C"])
    def test_elmore_targets(self, tree, probe):
        node = TREE25_PROBES[probe]
        assert elmore_delay(tree, node) == pytest.approx(
            TABLE2_PAPER[probe]["elmore"], rel=5e-3
        )

    @pytest.mark.parametrize("probe", ["A", "B", "C"])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_delay_entries_close_to_paper(self, analysis, tree, probe, k):
        node = TREE25_PROBES[probe]
        rise = TABLE2_RISE_TIMES[k]
        measured = measure_delay(analysis, node, SaturatedRamp(rise))
        paper = TABLE2_PAPER[probe]["delays"][k]
        assert measured == pytest.approx(paper, rel=0.12)

    def test_error_decreases_with_rise_time(self, analysis, tree):
        for probe, node in TREE25_PROBES.items():
            td = elmore_delay(tree, node)
            errors = []
            for rise in TABLE2_RISE_TIMES:
                d = measure_delay(analysis, node, SaturatedRamp(rise))
                errors.append(abs((d - td) / d))
            assert errors[0] > errors[1] > errors[2]

    def test_error_decreases_downstream(self, analysis, tree):
        """Fig. 14's other axis: at fixed rise time the relative error
        falls from A to B to C."""
        for rise in TABLE2_RISE_TIMES:
            errs = []
            for probe in ("A", "B", "C"):
                node = TREE25_PROBES[probe]
                td = elmore_delay(tree, node)
                d = measure_delay(analysis, node, SaturatedRamp(rise))
                errs.append(abs((d - td) / d))
            assert errs[0] > errs[1] > errs[2]

    def test_skew_decreases_downstream(self, tree):
        """Fig. 13: the impulse response gets less skewed downstream."""
        moments = transfer_moments(tree, 3)
        gammas = [
            moments.skewness(TREE25_PROBES[p]) for p in ("A", "B", "C")
        ]
        assert gammas[0] > gammas[1] > gammas[2] > 0.0


class TestGenerators:
    def test_corpus_deterministic(self):
        from repro.workloads import random_tree_corpus
        a = random_tree_corpus(5, seed=3)
        b = random_tree_corpus(5, seed=3)
        assert [t.num_nodes for t in a] == [t.num_nodes for t in b]

    def test_corpus_sizes_in_range(self):
        from repro.workloads import random_tree_corpus
        corpus = random_tree_corpus(20, size_range=(3, 9), seed=1)
        assert all(3 <= t.num_nodes <= 9 for t in corpus)

    def test_line_family(self):
        from repro.workloads import line_family
        family = line_family(sizes=(5, 10))
        assert [t.num_nodes for t in family] == [5, 10]

    def test_clock_family(self):
        from repro.workloads import clock_tree_family
        family = clock_tree_family(depths=(2, 3), fanout=2)
        assert [t.num_nodes for t in family] == [3, 7]

    def test_corpus_validation(self):
        from repro._exceptions import ValidationError
        from repro.workloads import random_tree_corpus
        import pytest as _pytest
        with _pytest.raises(ValidationError):
            random_tree_corpus(0)
        with _pytest.raises(ValidationError):
            random_tree_corpus(3, size_range=(5, 2))
